//! Self-testing measurement harness.
//!
//! A checker is *self-testing* when every modelled fault inside it is
//! detected (drives the output pair off-code) by at least one codeword
//! input it receives during normal operation. Together with
//! code-disjointness this gives the Strongly Code Disjoint property
//! (\[NIC 84\]) the TSC goal needs.
//!
//! The harness exhaustively injects every single stuck-at fault and sweeps
//! the provided codeword inputs. Checkers built from naturally-exercised
//! logic (two-rail trees, parity trees) come out 100 % self-testing;
//! constructions with structurally unreachable nodes under code inputs
//! (e.g. threshold terms beyond a constant weight) report their residue —
//! the report makes the trade-off measurable instead of hand-waved.

use scm_codes::TwoRail;
use scm_logic::fault::{fault_universe, Fault};
use scm_logic::{Netlist, SignalId};

/// Outcome of a self-testing sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTestReport {
    /// Total faults in the netlist universe.
    pub total: usize,
    /// Faults detected by at least one codeword input.
    pub tested: usize,
    /// Faults no codeword input detects.
    pub untestable: Vec<Fault>,
}

impl SelfTestReport {
    /// Fraction of faults that are self-tested.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.tested as f64 / self.total as f64
        }
    }
}

/// Sweep every stuck-at fault against the given codeword inputs.
///
/// `rails` identifies the checker's output pair inside `netlist`. A fault is
/// *tested* when some codeword input makes the faulty output pair invalid
/// (`00`/`11`).
pub fn self_testing_report<I>(
    netlist: &Netlist,
    rails: (SignalId, SignalId),
    codewords: I,
) -> SelfTestReport
where
    I: IntoIterator<Item = u64>,
{
    let words: Vec<u64> = codewords.into_iter().collect();
    let universe = fault_universe(netlist);
    let mut untestable = Vec::new();
    for fault in &universe {
        let mut detected = false;
        for &w in &words {
            let eval = netlist.eval_word(w, Some(*fault));
            let pair = TwoRail {
                t: eval.value(rails.0),
                f: eval.value(rails.1),
            };
            if pair.is_error() {
                detected = true;
                break;
            }
        }
        if !detected {
            untestable.push(*fault);
        }
    }
    let total = universe.len();
    let tested = total - untestable.len();
    SelfTestReport {
        total,
        tested,
        untestable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_rail_pair_is_fully_self_tested() {
        // Rails fed by two independent inputs, exercised with both code
        // words 01 and 10: every stuck-at on either rail is detected.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let report = self_testing_report(&nl, (a, b), [0b01u64, 0b10]);
        assert_eq!(report.coverage(), 1.0);
        assert_eq!(report.total, 4);
    }

    #[test]
    fn single_codeword_cannot_self_test() {
        // With only one input word, one polarity per rail is never
        // exercised; the report must show the residue.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let report = self_testing_report(&nl, (a, b), [0b10u64]);
        assert_eq!(report.tested, 2);
        assert_eq!(report.untestable.len(), 2);
        assert!(report.coverage() < 1.0);
    }

    #[test]
    fn common_mode_fault_site_is_structurally_untestable() {
        // The classic pitfall: deriving both rails from one signal makes
        // faults on that signal invisible — the harness must expose this.
        let mut nl = Netlist::new();
        let a = nl.input();
        let na = nl.inv(a);
        let report = self_testing_report(&nl, (a, na), [0u64, 1]);
        let untestable_on_a: Vec<_> = report.untestable.iter().filter(|f| f.signal == a).collect();
        assert_eq!(
            untestable_on_a.len(),
            2,
            "faults on the shared cone must be untestable"
        );
    }
}
