//! Cross-backend differential oracle: the behavioural twin-pair backend
//! and the gate-level netlist backend must agree on the **detection
//! outcome** of every cell of an identical fault × trial grid.
//!
//! The behavioural model is the campaign workhorse; the gate-level model
//! is ground truth for decoder faults (the actual generated decoder →
//! NOR-matrix → checker hardware with the stuck-at on the exact signal).
//! Property-testing them against each other over random geometries,
//! constant-weight codes, moduli and workload models is the oracle that
//! catches a divergence in either model's fault semantics.
//!
//! Agreement is asserted cycle by cycle on the decoder code verdicts
//! (`row_code_error` / `col_code_error`) — the only checkers both models
//! evaluate (the gate backend has no cell array, so parity is behavioural
//! only) — and, derived from them, on the first-detection cycle of every
//! trial.

use proptest::prelude::*;
use scm_area::RamOrganization;
use scm_codes::{CodewordMap, MOutOfN};
use scm_memory::backend::{BehavioralBackend, CycleObservation, FaultSimBackend, GateLevelBackend};
use scm_memory::campaign::decoder_fault_universe;
use scm_memory::design::RamConfig;
use scm_memory::fault::{CellRef, CouplingKind, FaultProcess, FaultScenario, FaultSite};
use scm_memory::sliced::{slab_words, SlicedBackend, SlicedObservation};
use scm_memory::workload::{model_by_name, Op, WorkloadSpec, MODEL_NAMES};

/// Constant-weight codes the gate-level checker generator can realise.
const CODES: [(u32, u32); 4] = [(2, 3), (3, 5), (2, 5), (3, 6)];

/// Odd moduli for the `B = A mod a` mapping.
const MODULI: [u64; 4] = [3, 5, 7, 9];

fn mix(seed: u64, fidx: usize, trial: u32) -> u64 {
    scm_system::seed_mix(seed, &[fidx as u64, trial as u64])
}

/// Per-lane, per-cycle observations of one scenario pack replayed at
/// the given lane width (scenarios per backend pass). Each chunk runs
/// at the narrowest multi-word slab that fits it — exactly how the
/// campaign engines pack — so equal results across widths is the slab
/// exactness contract, not a tautology.
fn sliced_observations(
    config: &RamConfig,
    scenarios: &[FaultScenario],
    seed: u64,
    ops: &[Op],
    width: usize,
) -> Vec<Vec<CycleObservation>> {
    fn run_chunk<const W: usize>(
        config: &RamConfig,
        chunk: &[FaultScenario],
        seed: u64,
        ops: &[Op],
    ) -> Vec<Vec<CycleObservation>> {
        let mut backend = SlicedBackend::<W>::prefilled(config, chunk, seed);
        let per_cycle: Vec<SlicedObservation<W>> = ops.iter().map(|&op| backend.step(op)).collect();
        (0..chunk.len())
            .map(|lane| per_cycle.iter().map(|obs| obs.lane(lane)).collect())
            .collect()
    }
    let mut lanes = Vec::new();
    for chunk in scenarios.chunks(width) {
        lanes.extend(match slab_words(chunk.len()) {
            1 => run_chunk::<1>(config, chunk, seed, ops),
            2 => run_chunk::<2>(config, chunk, seed, ops),
            3 => run_chunk::<3>(config, chunk, seed, ops),
            4 => run_chunk::<4>(config, chunk, seed, ops),
            5 => run_chunk::<5>(config, chunk, seed, ops),
            6 => run_chunk::<6>(config, chunk, seed, ops),
            7 => run_chunk::<7>(config, chunk, seed, ops),
            _ => run_chunk::<8>(config, chunk, seed, ops),
        });
    }
    lanes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_behavioral_and_gate_level_agree_on_detection(
        row_bits in 3u32..=6,
        mux_log in 1u32..=3,
        word_bits in 4u32..=16,
        code_idx in 0usize..CODES.len(),
        a_idx in 0usize..MODULI.len(),
        model_idx in 0usize..MODEL_NAMES.len(),
        seed in any::<u64>(),
        trials in 1u32..=2,
    ) {
        let rows = 1u64 << row_bits;
        let mux = 1u32 << mux_log;
        let words = rows * mux as u64;
        let org = RamOrganization::new(words, word_bits, mux);
        let (q, r) = CODES[code_idx];
        let code = MOutOfN::new(q, r).expect("listed codes are valid");
        let a = MODULI[a_idx];
        // Skip (modulus, code, lines) combinations the mapping layer
        // rejects (e.g. a modulus exceeding the codeword count).
        let row_map = CodewordMap::mod_a(code, a, rows);
        let col_map = CodewordMap::mod_a(code, a, mux as u64);
        prop_assume!(row_map.is_ok() && col_map.is_ok());
        let config = RamConfig::new(org, row_map.unwrap(), col_map.unwrap());
        let mut gate = GateLevelBackend::try_new(&config)
            .expect("constant-weight mappings always build a gate-level path");
        let mut beh = BehavioralBackend::prefilled(&config, seed);
        let model = model_by_name(MODEL_NAMES[model_idx]).expect("registry names resolve");
        let spec = WorkloadSpec {
            words,
            word_bits,
            write_fraction: 0.15,
        };

        // The identical fault grid on both backends: row- and
        // column-decoder universes, evenly subsampled to keep 256 cases
        // fast without biasing toward either polarity or block size.
        let mut faults: Vec<FaultSite> = decoder_fault_universe(row_bits)
            .into_iter()
            .step_by(5)
            .map(FaultSite::RowDecoder)
            .collect();
        faults.extend(
            decoder_fault_universe(org.col_bits().max(1))
                .into_iter()
                .step_by(3)
                .map(FaultSite::ColDecoder),
        );

        for (fidx, &site) in faults.iter().enumerate() {
            prop_assert!(gate.supports(&site.into()), "{site:?}");
            for trial in 0..trials {
                let mut stream = model.stream(spec, mix(seed, fidx, trial));
                let ops: Vec<Op> = (0..16).map(|_| stream.next_op()).collect();
                gate.reset_site(Some(site));
                beh.reset_site(Some(site));
                let mut first_gate = None;
                let mut first_beh = None;
                for (cycle, &op) in ops.iter().enumerate() {
                    let g = gate.step(op);
                    let b = beh.step(op);
                    prop_assert_eq!(
                        g.verdict.row_code_error,
                        b.verdict.row_code_error,
                        "{:?} trial {} cycle {} op {:?}: row verdicts diverge",
                        site, trial, cycle, op
                    );
                    prop_assert_eq!(
                        g.verdict.col_code_error,
                        b.verdict.col_code_error,
                        "{:?} trial {} cycle {} op {:?}: col verdicts diverge",
                        site, trial, cycle, op
                    );
                    let code_detected =
                        |v: scm_memory::design::Verdict| v.row_code_error || v.col_code_error;
                    if code_detected(g.verdict) && first_gate.is_none() {
                        first_gate = Some(cycle);
                    }
                    if code_detected(b.verdict) && first_beh.is_none() {
                        first_beh = Some(cycle);
                    }
                }
                prop_assert_eq!(
                    first_gate,
                    first_beh,
                    "{:?} trial {}: detection outcome diverges",
                    site,
                    trial
                );
            }
        }
    }

    /// The temporal axis of the oracle: both backends must realise the
    /// same **activation windows** for any fault process on decoder
    /// sites — delayed permanents, one-cycle transient glitches,
    /// duty-cycled intermittents. The gate backend runs its batched
    /// 64-lane path (which must split bursts at window boundaries), the
    /// behavioural backend steps serially; code verdicts must agree
    /// cycle by cycle regardless.
    #[test]
    fn prop_backends_agree_on_activation_windows(
        row_bits in 3u32..=5,
        mux_log in 1u32..=2,
        a_idx in 0usize..MODULI.len(),
        process_kind in 0usize..4,
        t0 in 0u64..24,
        period in 2u64..=6,
        duty in 1u64..=3,
        seed in any::<u64>(),
    ) {
        let rows = 1u64 << row_bits;
        let mux = 1u32 << mux_log;
        let words = rows * mux as u64;
        let org = RamOrganization::new(words, 8, mux);
        let code = MOutOfN::new(3, 5).expect("3-out-of-5 exists");
        let a = MODULI[a_idx];
        let row_map = CodewordMap::mod_a(code, a, rows);
        let col_map = CodewordMap::mod_a(code, a, mux as u64);
        prop_assume!(row_map.is_ok() && col_map.is_ok());
        let config = RamConfig::new(org, row_map.unwrap(), col_map.unwrap());
        let mut gate = GateLevelBackend::try_new(&config)
            .expect("constant-weight mappings always build a gate-level path");
        let mut beh = BehavioralBackend::prefilled(&config, seed);
        let process = match process_kind {
            0 => FaultProcess::PERMANENT,
            1 => FaultProcess::Permanent { onset: t0 },
            2 => FaultProcess::TransientFlip { at: t0 },
            _ => FaultProcess::Intermittent { onset: t0 % period, period, duty },
        };
        let model = model_by_name("uniform").expect("registry names resolve");
        let spec = WorkloadSpec { words, word_bits: 8, write_fraction: 0.15 };

        let faults: Vec<FaultSite> = decoder_fault_universe(row_bits)
            .into_iter()
            .step_by(7)
            .map(FaultSite::RowDecoder)
            .collect();
        for (fidx, &site) in faults.iter().enumerate() {
            let scenario = FaultScenario { site, process };
            prop_assert!(gate.supports(&scenario), "{}", scenario);
            prop_assert!(beh.supports(&scenario), "{}", scenario);
            // Cycle counts straddling the 64-lane burst boundary, so the
            // batched path must split windows inside and across bursts.
            let mut stream = model.stream(spec, mix(seed, fidx, 0));
            let ops: Vec<Op> = (0..80).map(|_| stream.next_op()).collect();
            gate.reset(Some(&scenario));
            beh.reset(Some(&scenario));
            let batched = gate.step_many(&ops);
            for (cycle, (&op, g)) in ops.iter().zip(&batched).enumerate() {
                let b = beh.step(op);
                prop_assert_eq!(
                    g.verdict.row_code_error,
                    b.verdict.row_code_error,
                    "{} cycle {} op {:?}: row verdicts diverge",
                    scenario, cycle, op
                );
                prop_assert_eq!(
                    g.verdict.col_code_error,
                    b.verdict.col_code_error,
                    "{} cycle {} op {:?}: col verdicts diverge",
                    scenario, cycle, op
                );
            }
        }
    }

}

proptest! {
    // Fewer cases than the scalar oracles above: each case replays a
    // >64-lane pack at five slab widths, so the per-case work is ~4×.
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The bit-sliced engine against both scalar oracles on one shared
    /// op stream: lane `L` of a sliced run over a random scenario pack
    /// must equal a scalar behavioural run of scenario `L` on the
    /// identical prefill seed, observation by observation — and, on
    /// decoder sites, the gate-level hardware must agree with that lane's
    /// code verdicts cycle by cycle. The pack exceeds 64 scenarios so
    /// slab widths 128/256 genuinely run multi-word slabs; every width in
    /// {1, 8, 64, 128, 256} must reproduce the reference bit-for-bit.
    #[test]
    fn prop_sliced_lanes_match_scalar_backends(
        row_bits in 3u32..=5,
        mux_log in 1u32..=2,
        word_bits in 4u32..=12,
        grid in any::<u64>(),
        process_kind in 0usize..6,
        knobs in any::<u64>(),
        seed in any::<u64>(),
    ) {
        // The vendored proptest stops at 8-tuples: the code/modulus/
        // model pick and the temporal knobs ride packed words.
        let code_idx = (grid % CODES.len() as u64) as usize;
        let a_idx = ((grid >> 8) % MODULI.len() as u64) as usize;
        let model_idx = ((grid >> 16) % MODEL_NAMES.len() as u64) as usize;
        let t0 = knobs % 20;
        let period = 2 + (knobs >> 8) % 5;
        let duty = 1 + (knobs >> 16) % 3;
        let rows = 1u64 << row_bits;
        let mux = 1u32 << mux_log;
        let words = rows * mux as u64;
        let org = RamOrganization::new(words, word_bits, mux);
        let (q, r) = CODES[code_idx];
        let code = MOutOfN::new(q, r).expect("listed codes are valid");
        let a = MODULI[a_idx];
        let row_map = CodewordMap::mod_a(code, a, rows);
        let col_map = CodewordMap::mod_a(code, a, mux as u64);
        prop_assume!(row_map.is_ok() && col_map.is_ok());
        let config = RamConfig::new(org, row_map.unwrap(), col_map.unwrap());
        let process = match process_kind {
            0 => FaultProcess::PERMANENT,
            1 => FaultProcess::Permanent { onset: t0 },
            2 => FaultProcess::TransientFlip { at: t0 },
            3 => FaultProcess::Intermittent { onset: t0 % period, period, duty },
            4 => FaultProcess::Coupling {
                aggressor: CellRef { row: 0, col: 1 },
                kind: CouplingKind::Inversion,
            },
            _ => FaultProcess::Coupling {
                aggressor: CellRef { row: rows as usize - 1, col: 0 },
                kind: CouplingKind::Idempotent { value: true },
            },
        };

        // A mixed pack across every site class of the random geometry.
        let mut sites: Vec<FaultSite> = vec![
            FaultSite::Cell { row: 0, col: 0, stuck: true },
            FaultSite::Cell {
                row: rows as usize - 1,
                col: word_bits as usize - 1,
                stuck: false,
            },
            FaultSite::DataRegisterBit { bit: 0, stuck: true },
            FaultSite::DataRegisterBit { bit: word_bits - 1, stuck: false },
            FaultSite::RowRomBit { line: rows - 1, bit: 0 },
            FaultSite::RowRomColumn { bit: 1, stuck: true },
        ];
        sites.extend(
            decoder_fault_universe(row_bits)
                .into_iter()
                .step_by(9)
                .map(FaultSite::RowDecoder),
        );
        sites.extend(
            decoder_fault_universe(org.col_bits().max(1))
                .into_iter()
                .step_by(4)
                .map(FaultSite::ColDecoder),
        );
        // Tile cell faults across the geometry until the pack needs a
        // ≥3-word slab at width 256 (and splits into mixed-width chunks
        // at 128) — otherwise the wide-slab paths would never run.
        'tile: for row in 0..rows as usize {
            for col in 0..word_bits as usize {
                if sites.len() >= 160 {
                    break 'tile;
                }
                sites.push(FaultSite::Cell { row, col, stuck: (row + col) % 2 == 0 });
            }
        }
        sites.truncate(160);
        // Apply the drawn process wherever the sliced engine can realise
        // it (coupling needs a cell victim); other sites fall back to the
        // classical permanent so every lane still carries a scenario.
        let scenarios: Vec<FaultScenario> = sites
            .iter()
            .map(|&site| {
                let s = FaultScenario { site, process };
                if SlicedBackend::<1>::supports(&s) {
                    s
                } else {
                    FaultScenario { site, process: FaultProcess::PERMANENT }
                }
            })
            .collect();

        let model = model_by_name(MODEL_NAMES[model_idx]).expect("registry names resolve");
        let spec = WorkloadSpec {
            words,
            word_bits,
            write_fraction: 0.2,
        };
        let mut stream = model.stream(spec, seed ^ 0x51_1CED);
        let ops: Vec<Op> = (0..40).map(|_| stream.next_op()).collect();

        let reference = sliced_observations(&config, &scenarios, seed, &ops, 64);
        let mut gate = GateLevelBackend::try_new(&config)
            .expect("constant-weight mappings always build a gate-level path");
        for (lane, s) in scenarios.iter().enumerate() {
            let mut scalar = BehavioralBackend::prefilled(&config, seed);
            scalar.reset(Some(s));
            let three_way = gate.supports(s);
            if three_way {
                gate.reset(Some(s));
            }
            for (cycle, &op) in ops.iter().enumerate() {
                let expect = scalar.step(op);
                let got = reference[lane][cycle];
                prop_assert_eq!(
                    got, expect,
                    "lane {} {} cycle {} op {:?}: sliced diverges from scalar",
                    lane, s, cycle, op
                );
                if three_way {
                    let g = gate.step(op);
                    prop_assert_eq!(
                        g.verdict.row_code_error,
                        got.verdict.row_code_error,
                        "lane {} {} cycle {}: gate row verdict diverges",
                        lane, s, cycle
                    );
                    prop_assert_eq!(
                        g.verdict.col_code_error,
                        got.verdict.col_code_error,
                        "lane {} {} cycle {}: gate col verdict diverges",
                        lane, s, cycle
                    );
                }
            }
        }
        // Slab-width invariance: every packing reproduces the reference
        // bit-for-bit (1 = scalar-slab degenerate case, 8 = sub-word,
        // 128/256 = two- and three-word slabs over this 160-lane pack).
        for width in [1usize, 8, 128, 256] {
            let replay = sliced_observations(&config, &scenarios, seed, &ops, width);
            prop_assert_eq!(
                &replay, &reference,
                "lane width {} diverges from the width-64 reference", width
            );
        }
    }
}
