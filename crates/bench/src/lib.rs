//! Shared experiment drivers for the reproduction harness.
//!
//! Every table and figure of the paper has a runnable regeneration target:
//!
//! | Experiment | Binary | Criterion bench |
//! |---|---|---|
//! | Table 1 (`c` sweep at `Pndc = 1e-9`) | `table1` | `benches/table1.rs` |
//! | Table 2 (`Pndc` sweep at `c = 10`) | `table2` | `benches/table2.rs` |
//! | §II safety example | `section2_safety` | — |
//! | §IV worked example | `section4_example` | — |
//! | Area-vs-latency trade-off (title figure) | `pareto` | `benches/pareto.rs` |
//! | Monte-Carlo validation of the bound | `montecarlo_validation` | `benches/faultsim.rs` |
//!
//! The binaries print the paper's published values side by side with the
//! regenerated ones and flag deviations; EXPERIMENTS.md records the full
//! comparison.

#![forbid(unsafe_code)]

use scm_area::tables::{percents_for_width, table1_rows, table2_rows, TableRow};
use scm_area::TechnologyParams;
use scm_codes::selection::SelectionPolicy;

/// Render one regenerated table (1 or 2) with paper-vs-ours annotations.
pub fn render_table(rows: &[TableRow], tech: &TechnologyParams, sweep_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{sweep_label:>8} | {:<12} | {:<12} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | match\n",
        "paper code", "our code", "16x2K", "32x4K", "64x8K", "p16x2K", "p32x4K", "p64x8K"
    ));
    out.push_str(&"-".repeat(110));
    out.push('\n');
    for row in rows {
        let sweep = if sweep_label.contains("Pndc") {
            format!("{:.0e}", row.pndc)
        } else {
            row.c.to_string()
        };
        let ours_at_paper_width = percents_for_width(row.paper.r, tech);
        let mark = if row.code_matches_paper() {
            "yes"
        } else if row.plan.r() < row.paper.r {
            "CHEAPER"
        } else {
            "WIDER"
        };
        out.push_str(&format!(
            "{sweep:>8} | {:<12} | {:<12} | {:>7.2} {:>7.2} {:>7.2} | {:>7.2} {:>7.2} {:>7.2} | {mark}\n",
            row.paper.code,
            row.plan.code_name(),
            ours_at_paper_width[0],
            ours_at_paper_width[1],
            ours_at_paper_width[2],
            row.paper.percents[0],
            row.paper.percents[1],
            row.paper.percents[2],
        ));
    }
    out
}

/// Regenerate and render Table 1 under both policies.
pub fn table1_report() -> String {
    let tech = TechnologyParams::default();
    let mut out = String::new();
    out.push_str("Table 1 — Pndc = 1e-9, c swept (percent HW increase; 'p' columns = paper)\n\n");
    for policy in SelectionPolicy::ALL {
        out.push_str(&format!("policy: {}\n", policy.name()));
        let rows = table1_rows(policy, &tech).expect("published parameters are feasible");
        out.push_str(&render_table(&rows, &tech, "c"));
        out.push('\n');
    }
    out
}

/// Regenerate and render Table 2 under both policies.
pub fn table2_report() -> String {
    let tech = TechnologyParams::default();
    let mut out = String::new();
    out.push_str("Table 2 — c = 10, Pndc swept (percent HW increase; 'p' columns = paper)\n\n");
    for policy in SelectionPolicy::ALL {
        out.push_str(&format!("policy: {}\n", policy.name()));
        let rows = table2_rows(policy, &tech).expect("published parameters are feasible");
        out.push_str(&render_table(&rows, &tech, "Pndc"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render() {
        let t1 = table1_report();
        assert!(t1.contains("9-out-of-18"));
        assert!(t1.contains("1-out-of-2"));
        let t2 = table2_report();
        assert!(t2.contains("7-out-of-13"));
        assert!(t2.contains("inverse-a"));
    }
}
