//! Sharded multi-bank system walkthrough: compose heterogeneous
//! self-checking banks behind an interleaver, schedule scrubs and
//! checkpoints against live traffic, and watch the *system-level*
//! detection trade-off the single-memory analysis cannot see.
//!
//! Run: `cargo run --release --example memory_system`

use scm_area::RamOrganization;
use scm_codes::{CodewordMap, MOutOfN};
use scm_memory::campaign::CampaignConfig;
use scm_memory::design::RamConfig;
use scm_memory::workload::model_by_name;
use scm_system::{CheckpointSchedule, Interleaving, ScrubSchedule, SystemCampaign, SystemConfig};

fn bank(words: u64, word_bits: u32, mux: u32, a: u64) -> RamConfig {
    let org = RamOrganization::new(words, word_bits, mux);
    let code = MOutOfN::new(3, 5).expect("3-out-of-5 exists");
    RamConfig::new(
        org,
        CodewordMap::mod_a(code, a, org.rows()).expect("odd modulus maps"),
        CodewordMap::mod_a(code, a, org.mux_factor() as u64).expect("odd modulus maps"),
    )
}

fn main() {
    let banks = vec![
        bank(1024, 16, 8, 9), // big code store
        bank(256, 8, 4, 9),   // mid working bank
        bank(64, 8, 4, 9),    // small hot bank
    ];
    let campaign = CampaignConfig {
        cycles: 400,
        trials: 6,
        seed: 0xA11,
        write_fraction: 0.1,
    };

    println!("one workload, two interleavings, scrub on/off — system view:\n");
    for interleaving in [Interleaving::LowOrder, Interleaving::HighOrder] {
        for scrub_period in [0u64, 4] {
            let config = SystemConfig {
                banks: banks.clone(),
                interleaving,
                scrub: ScrubSchedule {
                    period: scrub_period,
                },
                checkpoint: CheckpointSchedule { interval: 64 },
            };
            let engine = SystemCampaign::new(config, campaign)
                .workload_model(model_by_name("hotspot").expect("built-in"));
            let universe = engine.decoder_universe(8);
            let result = engine.run(&universe);
            println!(
                "{:<10} interleave, scrub period {:>2}: detected {:.3}, mean latency {:>6.1} \
                 cycles, worst bank {:>6.1}, lost work {:>6.1}",
                interleaving.name(),
                scrub_period,
                result.detected_fraction(),
                result.mean_latency_across_banks(),
                result.worst_latency_across_banks(),
                result.expected_lost_work(),
            );
        }
    }
    println!(
        "\nhigh-order interleaving starves the cold banks under the zipf hotspot;\n\
         the scrub sweep is then the only bounded detection path — the joint\n\
         (latency, recovery-interval) effect the system layer exists to measure."
    );
}
