//! The parallel fault-injection campaign engine.
//!
//! One engine runs the whole fault × trial grid of a Monte-Carlo campaign
//! through a [`FaultSimBackend`], spreading the grid over a rayon thread
//! pool with dynamic work stealing. Determinism is a hard contract:
//!
//! * every trial's workload RNG is seeded purely from
//!   `(campaign seed, fault index, trial index)`,
//! * per-fault statistics are sums of per-trial counters, which commute,
//!
//! so the result is **bit-identical at every thread count** — the
//! single-thread run is the specification, the parallel run is just
//! faster. The determinism test in `tests/campaign_engine.rs` enforces
//! this.
//!
//! The grid is decomposed fault-major into trial blocks: when the
//! fault universe is wide (the common case — thousands of collapsed
//! stuck-ats), each block is one fault's full trial set; when callers
//! probe few faults with many trials, trial ranges split so every worker
//! still gets enough blocks to steal. Blocks are the scheduling unit;
//! workers pull them off a shared queue, so a fault whose trials detect
//! in one cycle doesn't leave its thread idle while a slow fault finishes.

use crate::arena::{OpStreamArena, ReplayOps, ARENA_OP_BUDGET};
use crate::backend::{BehavioralBackend, FaultSimBackend};
use crate::campaign::{CampaignConfig, CampaignResult, FaultResult};
use crate::design::RamConfig;
use crate::fault::{FaultScenario, FaultSite};
use crate::sim::measure_detection_on;
use crate::sliced::{
    measure_detection_sliced, shared_trial_seed, slab_words, SlicedBackend, MAX_SLAB_LANES,
};
use crate::workload::{
    AddressPattern, FixedPattern, Op, ScrubInterleaver, UniformRandom, WorkloadModel, WorkloadSpec,
};
use rayon::prelude::*;
use scm_obs::{sort_chronological, Event, EventKind};
use std::sync::Arc;

/// One schedulable unit: a contiguous trial range of one fault.
#[derive(Debug, Clone, Copy)]
struct TrialBlock {
    fidx: usize,
    trial_start: u32,
    trial_end: u32,
}

/// Parallel campaign runner over any [`FaultSimBackend`].
#[derive(Debug, Clone)]
pub struct CampaignEngine {
    campaign: CampaignConfig,
    model: Arc<dyn WorkloadModel>,
    threads: usize,
    scrub_period: u64,
    sliced: bool,
    lane_width: usize,
    serial_threshold: u64,
    arena: Option<Arc<OpStreamArena>>,
}

/// How full the sliced engine's lane blocks are for one grid: `filled`
/// scenarios over `capacity` slab lanes across `blocks` packs. The gap
/// is the partial-final-block waste the campaign CLI surfaces as its
/// `occupancy:` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOccupancy {
    /// Scenario lanes actually carrying a fault.
    pub filled: usize,
    /// Total lanes allocated (each block rounds up to whole slab words).
    pub capacity: usize,
    /// Number of lane blocks the grid splits into.
    pub blocks: usize,
    /// The configured lane width (scenarios per block, before rounding).
    pub width: usize,
}

/// Grids of at most this many `scenario × trial` cells run serially by
/// default: below it the rayon fan-out (block construction, work-steal
/// queues, and — with pinned threads — pool construction) costs more
/// than it buys (`BENCH_system.json` tiny-grid rows).
pub const DEFAULT_SERIAL_THRESHOLD: u64 = 256;

impl CampaignEngine {
    /// Engine with the given campaign parameters, the paper's uniform
    /// workload model, no scrubbing, and the ambient rayon thread count.
    pub fn new(campaign: CampaignConfig) -> Self {
        CampaignEngine {
            campaign,
            model: Arc::new(UniformRandom),
            threads: 0,
            scrub_period: 0,
            sliced: false,
            lane_width: MAX_SLAB_LANES,
            serial_threshold: DEFAULT_SERIAL_THRESHOLD,
            arena: None,
        }
    }

    /// Largest `scenario × trial` grid that skips the rayon fan-out and
    /// runs serially on the calling thread (`0` = always fan out).
    /// Purely a scheduling knob: block decomposition and the in-order
    /// merge are unchanged, so results stay bit-identical either way.
    pub fn serial_threshold(mut self, cells: u64) -> Self {
        self.serial_threshold = cells;
        self
    }

    /// Merge a background scrubber into every trial's stream: each
    /// `period`-th cycle becomes a sequential sweep read
    /// ([`ScrubInterleaver`]; `0` = off, the default — bit-identical to
    /// the unscrubbed engine). Against transient flips this is the knob
    /// that turns "maybe never read" into "read within one sweep".
    pub fn scrub(mut self, period: u64) -> Self {
        self.scrub_period = period;
        self
    }

    /// Override the workload's address pattern (legacy convenience for the
    /// fixed [`AddressPattern`] shapes; equivalent to
    /// `workload_model(Arc::new(FixedPattern(pattern)))`).
    pub fn pattern(self, pattern: AddressPattern) -> Self {
        self.workload(FixedPattern(pattern))
    }

    /// Plug in a workload model by value.
    pub fn workload(mut self, model: impl WorkloadModel + 'static) -> Self {
        self.model = Arc::new(model);
        self
    }

    /// Plug in a shared workload model (e.g. one resolved from
    /// [`crate::workload::model_by_name`]).
    pub fn workload_model(mut self, model: Arc<dyn WorkloadModel>) -> Self {
        self.model = model;
        self
    }

    /// The workload model trials will run.
    pub fn model(&self) -> &Arc<dyn WorkloadModel> {
        &self.model
    }

    /// Pin the thread count (`0` = use the ambient rayon default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Route [`run_scenarios`](Self::run_scenarios) through the bit-sliced
    /// backend: up to [`lane_width`](Self::lane_width) scenarios share one
    /// simulation pass, each riding a bit lane of the packed slab state.
    ///
    /// The sliced engine keeps the bit-identical-at-any-thread-count
    /// contract and adds lane-packing invariance: the same grid at any
    /// lane width from 1 to 512 produces the same [`CampaignResult`]. Its
    /// workload seeding is shared across the lane block (common random
    /// numbers), so sliced results are *internally* deterministic but not
    /// numerically equal to the scalar engine's per-fault streams.
    pub fn sliced(mut self, sliced: bool) -> Self {
        self.sliced = sliced;
        self
    }

    /// Scenarios packed per simulation pass on the sliced path (clamped
    /// to `1..=`[`MAX_SLAB_LANES`]; default 512). Each block runs at the
    /// narrowest multi-word slab that fits it ([`slab_words`]), so any
    /// width is exact — narrower widths exist for the lane-packing
    /// invariance tests, production runs want the default.
    pub fn lane_width(mut self, width: usize) -> Self {
        self.lane_width = width.clamp(1, MAX_SLAB_LANES);
        self
    }

    /// Share a materialised op-stream arena with other engines (e.g.
    /// across guided-search fidelity rungs). Without one the engine
    /// builds a private arena per [`run_scenarios`](Self::run_scenarios)
    /// call; either way each trial's stream is generated exactly once
    /// per campaign while the grid fits [`ARENA_OP_BUDGET`].
    pub fn arena(mut self, arena: Arc<OpStreamArena>) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Lane occupancy of a `scenarios`-wide grid at the current lane
    /// width — what the campaign CLI prints as its `occupancy:` line.
    pub fn occupancy(&self, scenarios: usize) -> LaneOccupancy {
        let width = self.lane_width;
        let blocks = scenarios.div_ceil(width);
        let full = scenarios / width;
        let rem = scenarios % width;
        let capacity =
            full * slab_words(width) * 64 + if rem > 0 { slab_words(rem) * 64 } else { 0 };
        LaneOccupancy {
            filled: scenarios,
            capacity,
            blocks,
            width,
        }
    }

    /// The campaign parameters.
    pub fn campaign(&self) -> &CampaignConfig {
        &self.campaign
    }

    /// Threads the engine will actually use.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }

    /// Run over the behavioural backend with the campaign convention's
    /// random prefill (the classic `run_campaign` entry point; every
    /// fault pinned from cycle 0).
    pub fn run(&self, config: &RamConfig, faults: &[FaultSite]) -> CampaignResult {
        let scenarios: Vec<FaultScenario> = faults
            .iter()
            .copied()
            .map(FaultScenario::permanent)
            .collect();
        self.run_scenarios(config, &scenarios)
    }

    /// Run a temporal-scenario grid over the behavioural backend with the
    /// campaign convention's random prefill — or, when
    /// [`sliced`](Self::sliced) is on, over the bit-sliced backend with
    /// the same prefill seed.
    pub fn run_scenarios(&self, config: &RamConfig, scenarios: &[FaultScenario]) -> CampaignResult {
        if self.sliced {
            return self.run_scenarios_sliced(config, scenarios);
        }
        let backend = BehavioralBackend::prefilled(config, self.campaign.seed ^ 0xF1E1D1);
        self.run_scenarios_on(&backend, scenarios)
    }

    /// Run the scenario × trial grid on the bit-sliced backend: scenarios
    /// are chunked into lane blocks of [`lane_width`](Self::lane_width),
    /// each block runs at the narrowest multi-word slab that fits it
    /// ([`slab_words`]), every trial advances all lanes of a block
    /// through one shared op-stream, and per-lane detection cycles come
    /// out of the packed detection masks. Trial streams are materialised
    /// once in the op-stream arena and replayed by reference per block
    /// (grids beyond [`ARENA_OP_BUDGET`] regenerate per block instead —
    /// bit-identical either way). Trial ranges still split across rayon
    /// workers exactly like the scalar path, so results are bit-identical
    /// at any thread count *and* at any lane width (the trial stream seed
    /// depends only on `(campaign seed, trial)`, never on lane geometry).
    ///
    /// # Panics
    /// Panics if the sliced backend does not
    /// [support](SlicedBackend::supports) one of the scenarios.
    pub fn run_scenarios_sliced(
        &self,
        config: &RamConfig,
        scenarios: &[FaultScenario],
    ) -> CampaignResult {
        if let Some(bad) = scenarios.iter().find(|s| !SlicedBackend::<1>::supports(s)) {
            panic!("backend 'sliced' cannot inject {bad:?}");
        }
        let width = self.lane_width.clamp(1, MAX_SLAB_LANES);
        let chunks: Vec<&[FaultScenario]> = scenarios.chunks(width).collect();
        let blocks = self.decompose_slabs(chunks.len());
        let org = config.org();
        let spec = WorkloadSpec {
            words: org.words(),
            word_bits: org.word_bits(),
            write_fraction: self.campaign.write_fraction,
        };
        let streams: Option<Vec<Arc<Vec<Op>>>> = if (self.campaign.trials as u64)
            .saturating_mul(self.campaign.cycles)
            <= ARENA_OP_BUDGET
        {
            let arena = self.arena.clone().unwrap_or_default();
            Some(arena.prepare(
                &self.model,
                spec,
                self.campaign.seed,
                self.scrub_period,
                self.campaign.trials,
                self.campaign.cycles,
            ))
        } else {
            None
        };
        let run_block = |block: &TrialBlock| -> Vec<FaultResult> {
            let chunk = chunks[block.fidx];
            let streams = streams.as_deref();
            match slab_words(chunk.len()) {
                1 => self.run_sliced_block::<1>(config, chunk, *block, streams),
                2 => self.run_sliced_block::<2>(config, chunk, *block, streams),
                3 => self.run_sliced_block::<3>(config, chunk, *block, streams),
                4 => self.run_sliced_block::<4>(config, chunk, *block, streams),
                5 => self.run_sliced_block::<5>(config, chunk, *block, streams),
                6 => self.run_sliced_block::<6>(config, chunk, *block, streams),
                7 => self.run_sliced_block::<7>(config, chunk, *block, streams),
                _ => self.run_sliced_block::<8>(config, chunk, *block, streams),
            }
        };
        let dispatch = || -> Vec<Vec<FaultResult>> { blocks.par_iter().map(run_block).collect() };
        let partials: Vec<Vec<FaultResult>> = if self.runs_serially(scenarios.len()) {
            // Tiny grid: the fan-out costs more than it buys. Same
            // blocks, same order, same merge — bit-identical results.
            blocks.iter().map(run_block).collect()
        } else if self.threads == 0 {
            dispatch()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("thread pool construction is infallible")
                .install(dispatch)
        };
        // Fold trial-split partials of the same chunk back together,
        // lane by lane, then flatten chunk-major — scenario input order.
        let mut per_chunk: Vec<Vec<FaultResult>> = Vec::with_capacity(chunks.len());
        let mut last_fidx = usize::MAX;
        for (block, partial) in blocks.iter().zip(partials) {
            if block.fidx == last_fidx {
                let acc = per_chunk.last_mut().expect("a merge always follows a push");
                for (a, p) in acc.iter_mut().zip(partial) {
                    a.trials += p.trials;
                    a.undetected += p.undetected;
                    a.error_escapes += p.error_escapes;
                    a.detection_cycle_sum += p.detection_cycle_sum;
                    a.onset_latency_sum += p.onset_latency_sum;
                    a.detected += p.detected;
                }
            } else {
                per_chunk.push(partial);
                last_fidx = block.fidx;
            }
        }
        let per_fault: Vec<FaultResult> = per_chunk.into_iter().flatten().collect();
        debug_assert_eq!(per_fault.len(), scenarios.len());
        CampaignResult {
            per_fault,
            config: self.campaign,
        }
    }

    /// One trial range of one lane block at slab width `W`: every trial
    /// steps all packed scenarios at once, then the per-lane outcomes
    /// are scattered back into one [`FaultResult`] per lane. With
    /// `streams` the trial ops replay from the arena; without, they
    /// regenerate from the model (identical sequences either way).
    fn run_sliced_block<const W: usize>(
        &self,
        config: &RamConfig,
        chunk: &[FaultScenario],
        block: TrialBlock,
        streams: Option<&[Arc<Vec<Op>>]>,
    ) -> Vec<FaultResult> {
        let mut backend =
            SlicedBackend::<W>::prefilled(config, chunk, self.campaign.seed ^ 0xF1E1D1);
        let org = config.org();
        let trials = block.trial_end - block.trial_start;
        let mut results: Vec<FaultResult> = chunk
            .iter()
            .map(|scenario| FaultResult {
                site: scenario.site,
                process: scenario.process,
                trials,
                undetected: 0,
                error_escapes: 0,
                detection_cycle_sum: 0,
                onset_latency_sum: 0,
                detected: 0,
            })
            .collect();
        let spec = WorkloadSpec {
            words: org.words(),
            word_bits: org.word_bits(),
            write_fraction: self.campaign.write_fraction,
        };
        for trial in block.trial_start..block.trial_end {
            backend.reset();
            let outcomes = match streams {
                Some(streams) => {
                    let mut replay = ReplayOps::new(&streams[trial as usize]);
                    measure_detection_sliced(&mut backend, &mut replay, self.campaign.cycles)
                }
                None => {
                    let workload = self
                        .model
                        .stream(spec, shared_trial_seed(self.campaign.seed, trial));
                    if self.scrub_period > 0 {
                        let mut scrubbed =
                            ScrubInterleaver::new(workload, self.scrub_period, org.words());
                        measure_detection_sliced(&mut backend, &mut scrubbed, self.campaign.cycles)
                    } else {
                        let mut workload = workload;
                        measure_detection_sliced(
                            &mut backend,
                            workload.as_mut(),
                            self.campaign.cycles,
                        )
                    }
                }
            };
            for (lane, out) in outcomes.iter().enumerate() {
                let result = &mut results[lane];
                match out.first_detection {
                    Some(d) => {
                        result.detected += 1;
                        result.detection_cycle_sum += d;
                        let onset = chunk[lane]
                            .process
                            .corruption_onset()
                            .map(|a| a.min(out.first_error.unwrap_or(d)))
                            .unwrap_or_else(|| out.first_error.unwrap_or(d))
                            .min(d);
                        result.onset_latency_sum += d - onset;
                    }
                    None => result.undetected += 1,
                }
                if out.error_escaped() {
                    result.error_escapes += 1;
                }
            }
        }
        results
    }

    /// Run the classical permanent grid on clones of `backend`.
    ///
    /// # Panics
    /// Panics if `backend` does not [support](FaultSimBackend::supports)
    /// one of the faults.
    pub fn run_on<B>(&self, backend: &B, faults: &[FaultSite]) -> CampaignResult
    where
        B: FaultSimBackend + Clone + Send + Sync,
    {
        let scenarios: Vec<FaultScenario> = faults
            .iter()
            .copied()
            .map(FaultScenario::permanent)
            .collect();
        self.run_scenarios_on(backend, &scenarios)
    }

    /// Run the full scenario × trial grid on clones of `backend`.
    ///
    /// # Panics
    /// Panics if `backend` does not [support](FaultSimBackend::supports)
    /// one of the scenarios.
    pub fn run_scenarios_on<B>(&self, backend: &B, scenarios: &[FaultScenario]) -> CampaignResult
    where
        B: FaultSimBackend + Clone + Send + Sync,
    {
        if let Some(bad) = scenarios.iter().find(|s| !backend.supports(s)) {
            panic!("backend '{}' cannot inject {bad:?}", backend.name());
        }
        let blocks = self.decompose(scenarios.len());
        let dispatch = || -> Vec<FaultResult> {
            blocks
                .par_iter()
                .map(|block| self.run_block(backend.clone(), scenarios[block.fidx], *block))
                .collect()
        };
        let partials: Vec<FaultResult> = if self.runs_serially(scenarios.len()) {
            // Tiny grid: the fan-out costs more than it buys. Same
            // blocks, same order, same merge — bit-identical results.
            blocks
                .iter()
                .map(|block| self.run_block(backend.clone(), scenarios[block.fidx], *block))
                .collect()
        } else if self.threads == 0 {
            // Ambient width: no per-call pool, the global default applies.
            dispatch()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("thread pool construction is infallible")
                .install(dispatch)
        };
        // Blocks are generated fault-major and collected in input order, so
        // each fault's partials are adjacent; fold them back together.
        let mut per_fault: Vec<FaultResult> = Vec::with_capacity(scenarios.len());
        let mut last_fidx = usize::MAX;
        for (block, partial) in blocks.iter().zip(partials) {
            if block.fidx == last_fidx {
                let acc = per_fault.last_mut().expect("a merge always follows a push");
                acc.trials += partial.trials;
                acc.undetected += partial.undetected;
                acc.error_escapes += partial.error_escapes;
                acc.detection_cycle_sum += partial.detection_cycle_sum;
                acc.onset_latency_sum += partial.onset_latency_sum;
                acc.detected += partial.detected;
            } else {
                per_fault.push(partial);
                last_fidx = block.fidx;
            }
        }
        debug_assert_eq!(per_fault.len(), scenarios.len());
        CampaignResult {
            per_fault,
            config: self.campaign,
        }
    }

    /// Trace the permanent grid: the scenario-level twin of
    /// [`run`](Self::run).
    pub fn trace(&self, config: &RamConfig, faults: &[FaultSite]) -> Vec<Event> {
        let scenarios: Vec<FaultScenario> = faults
            .iter()
            .copied()
            .map(FaultScenario::permanent)
            .collect();
        self.trace_scenarios(config, &scenarios)
    }

    /// Replay the scenario × trial grid as a structured event trace.
    ///
    /// This is a **canonical replay**, not a tap on the result path: it
    /// always runs the behavioural backend with the shared-stream
    /// (common-random-numbers) trial seeding the sliced engine defines,
    /// which PR 6's lane-exactness contract guarantees is exactly what
    /// every lane of the default sliced engine observes. The trace is
    /// therefore a pure function of `(seed, fault, trial)` — bit-identical
    /// at any thread count, any lane width, and under either engine flag —
    /// and the result path keeps zero overhead when tracing is off.
    pub fn trace_scenarios(&self, config: &RamConfig, scenarios: &[FaultScenario]) -> Vec<Event> {
        let dispatch = || -> Vec<Vec<Event>> {
            scenarios
                .par_iter()
                .enumerate()
                .map(|(fidx, scenario)| self.trace_fault(config, fidx, scenario))
                .collect()
        };
        let per_fault: Vec<Vec<Event>> = if self.runs_serially(scenarios.len()) {
            scenarios
                .iter()
                .enumerate()
                .map(|(fidx, scenario)| self.trace_fault(config, fidx, scenario))
                .collect()
        } else if self.threads == 0 {
            dispatch()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("thread pool construction is infallible")
                .install(dispatch)
        };
        per_fault.into_iter().flatten().collect()
    }

    /// Replay every trial of one fault, emitting its events in
    /// chronological order. Pure in `(campaign seed, fidx, trial)`.
    fn trace_fault(&self, config: &RamConfig, fidx: usize, scenario: &FaultScenario) -> Vec<Event> {
        use crate::fault::FaultProcess;
        let mut backend = BehavioralBackend::prefilled(config, self.campaign.seed ^ 0xF1E1D1);
        let org = config.org();
        let spec = WorkloadSpec {
            words: org.words(),
            word_bits: org.word_bits(),
            write_fraction: self.campaign.write_fraction,
        };
        let fault = fidx as u32;
        let mut events = Vec::new();
        for trial in 0..self.campaign.trials {
            backend.reset(Some(scenario));
            let workload = self
                .model
                .stream(spec, shared_trial_seed(self.campaign.seed, trial));
            let out = if self.scrub_period > 0 {
                let mut scrubbed = ScrubInterleaver::new(workload, self.scrub_period, org.words());
                measure_detection_on(&mut backend, &mut scrubbed, self.campaign.cycles)
            } else {
                let mut workload = workload;
                measure_detection_on(&mut backend, workload.as_mut(), self.campaign.cycles)
            };
            let mut trial_events = Vec::new();
            // Onset: a transient strike is an SEU event at its flip
            // cycle; every other process activates at its first active
            // window (couplings are armed from cycle 0).
            match scenario.process {
                FaultProcess::TransientFlip { at } => {
                    if at < out.cycles_run {
                        trial_events.push(Event::cell(at, 0, fault, trial, EventKind::SeuStrike));
                    }
                }
                FaultProcess::Permanent { onset } | FaultProcess::Intermittent { onset, .. } => {
                    if onset < out.cycles_run {
                        trial_events.push(Event::cell(onset, 0, fault, trial, EventKind::Activate));
                    }
                }
                FaultProcess::Coupling { .. } => {
                    trial_events.push(Event::cell(0, 0, fault, trial, EventKind::Activate));
                }
            }
            if self.scrub_period > 0 {
                let sweep_len = self.scrub_period * org.words();
                let mut sweep = 1u64;
                while sweep * sweep_len <= out.cycles_run {
                    trial_events.push(Event::cell(
                        sweep * sweep_len - 1,
                        0,
                        fault,
                        trial,
                        EventKind::ScrubSweep { sweep },
                    ));
                    sweep += 1;
                }
            }
            if let Some(d) = out.first_detection {
                let onset = scenario
                    .process
                    .corruption_onset()
                    .map(|a| a.min(out.first_error.unwrap_or(d)))
                    .unwrap_or_else(|| out.first_error.unwrap_or(d))
                    .min(d);
                trial_events.push(Event::cell(
                    d,
                    0,
                    fault,
                    trial,
                    EventKind::Detect { latency: d - onset },
                ));
            }
            if out.error_escaped() {
                let t = out.first_error.expect("an escape implies an error");
                trial_events.push(Event::cell(t, 0, fault, trial, EventKind::Escape));
            }
            sort_chronological(&mut trial_events);
            events.extend(trial_events);
        }
        events
    }

    /// Is this grid small enough for the serial fast path?
    fn runs_serially(&self, scenarios: usize) -> bool {
        self.serial_threshold > 0
            && scenarios as u64 * self.campaign.trials as u64 <= self.serial_threshold
    }

    /// Split the grid into schedulable blocks: one per fault when faults
    /// outnumber workers, trial-splitting otherwise.
    fn decompose(&self, num_faults: usize) -> Vec<TrialBlock> {
        let trials = self.campaign.trials;
        let threads = self.resolved_threads();
        let target_blocks = threads * 8;
        let splits_per_fault = if num_faults == 0 || num_faults >= target_blocks {
            1
        } else {
            (target_blocks.div_ceil(num_faults) as u32).clamp(1, trials.max(1))
        };
        let block_len = trials.div_ceil(splits_per_fault).max(1);
        let mut blocks = Vec::with_capacity(num_faults * splits_per_fault as usize);
        for fidx in 0..num_faults {
            let mut t0 = 0u32;
            while t0 < trials {
                let t1 = (t0 + block_len).min(trials);
                blocks.push(TrialBlock {
                    fidx,
                    trial_start: t0,
                    trial_end: t1,
                });
                t0 = t1;
            }
            if trials == 0 {
                blocks.push(TrialBlock {
                    fidx,
                    trial_start: 0,
                    trial_end: 0,
                });
            }
        }
        blocks
    }

    /// Split slab blocks into schedulable trial ranges. Unlike
    /// [`decompose`](Self::decompose), which over-decomposes by 8× for
    /// work stealing, this only splits trials as far as the worker
    /// count demands: every extra trial range rebuilds the block's
    /// fault tables (the dominant fixed cost of a wide slab), so a
    /// serial run gets exactly one backend per block and a parallel
    /// run pays construction only once per worker. Results are
    /// invariant either way — trial outcomes never depend on which
    /// block ran them.
    fn decompose_slabs(&self, num_chunks: usize) -> Vec<TrialBlock> {
        let trials = self.campaign.trials;
        let threads = self.resolved_threads();
        let splits_per_chunk = if num_chunks == 0 || num_chunks >= threads {
            1
        } else {
            (threads.div_ceil(num_chunks) as u32).clamp(1, trials.max(1))
        };
        let block_len = trials.div_ceil(splits_per_chunk).max(1);
        let mut blocks = Vec::with_capacity(num_chunks * splits_per_chunk as usize);
        for fidx in 0..num_chunks {
            let mut t0 = 0u32;
            while t0 < trials {
                let t1 = (t0 + block_len).min(trials);
                blocks.push(TrialBlock {
                    fidx,
                    trial_start: t0,
                    trial_end: t1,
                });
                t0 = t1;
            }
            if trials == 0 {
                blocks.push(TrialBlock {
                    fidx,
                    trial_start: 0,
                    trial_end: 0,
                });
            }
        }
        blocks
    }

    /// Workload seed for one `(fault, trial)` cell — a pure function of
    /// the campaign seed and grid coordinates, never of scheduling.
    fn trial_seed(&self, fidx: usize, trial: u32) -> u64 {
        self.campaign
            .seed
            .wrapping_add((fidx as u64) << 20)
            .wrapping_add(trial as u64)
    }

    fn run_block<B: FaultSimBackend>(
        &self,
        mut backend: B,
        scenario: FaultScenario,
        block: TrialBlock,
    ) -> FaultResult {
        let org = backend.config().org();
        let mut result = FaultResult {
            site: scenario.site,
            process: scenario.process,
            trials: block.trial_end - block.trial_start,
            undetected: 0,
            error_escapes: 0,
            detection_cycle_sum: 0,
            onset_latency_sum: 0,
            detected: 0,
        };
        let spec = WorkloadSpec {
            words: org.words(),
            word_bits: org.word_bits(),
            write_fraction: self.campaign.write_fraction,
        };
        for trial in block.trial_start..block.trial_end {
            backend.reset(Some(&scenario));
            let workload = self.model.stream(spec, self.trial_seed(block.fidx, trial));
            let out = if self.scrub_period > 0 {
                let mut scrubbed = ScrubInterleaver::new(workload, self.scrub_period, org.words());
                measure_detection_on(&mut backend, &mut scrubbed, self.campaign.cycles)
            } else {
                let mut workload = workload;
                measure_detection_on(&mut backend, workload.as_mut(), self.campaign.cycles)
            };
            match out.first_detection {
                Some(d) => {
                    result.detected += 1;
                    result.detection_cycle_sum += d;
                    // Latency from *true* onset: the silent-corruption
                    // instant when the process has one (a transient
                    // flip), the first erroneous output otherwise —
                    // exactly the paper's definition for permanents.
                    let onset = scenario
                        .process
                        .corruption_onset()
                        .map(|a| a.min(out.first_error.unwrap_or(d)))
                        .unwrap_or_else(|| out.first_error.unwrap_or(d))
                        .min(d);
                    result.onset_latency_sum += d - onset;
                }
                None => result.undetected += 1,
            }
            if out.error_escaped() {
                result.error_escapes += 1;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::decoder_fault_universe;
    use scm_area::RamOrganization;
    use scm_codes::{CodewordMap, MOutOfN};

    fn config() -> RamConfig {
        let org = RamOrganization::new(64, 8, 4);
        let code = MOutOfN::new(3, 5).unwrap();
        RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, 16).unwrap(),
            CodewordMap::mod_a(code, 9, 4).unwrap(),
        )
    }

    fn row_faults() -> Vec<FaultSite> {
        decoder_fault_universe(4)
            .into_iter()
            .map(FaultSite::RowDecoder)
            .collect()
    }

    #[test]
    fn grid_decomposition_covers_every_cell_once() {
        for (faults, trials, threads) in [
            (64usize, 8u32, 4usize),
            (3, 100, 8),
            (1, 7, 2),
            (200, 1, 16),
        ] {
            let engine = CampaignEngine::new(CampaignConfig {
                trials,
                ..CampaignConfig::default()
            })
            .threads(threads);
            let blocks = engine.decompose(faults);
            let mut seen = vec![0u32; faults];
            for b in &blocks {
                assert!(b.trial_start < b.trial_end, "empty block {b:?}");
                seen[b.fidx] += b.trial_end - b.trial_start;
            }
            assert!(
                seen.iter().all(|&t| t == trials),
                "{faults}x{trials}@{threads}: {seen:?}"
            );
            // Fault-major ordering: fidx never decreases, trial ranges are
            // contiguous per fault.
            for w in blocks.windows(2) {
                assert!(w[1].fidx >= w[0].fidx);
                if w[1].fidx == w[0].fidx {
                    assert_eq!(w[1].trial_start, w[0].trial_end);
                }
            }
        }
    }

    #[test]
    fn engine_matches_across_thread_counts_and_trial_splits() {
        let cfg = config();
        let faults = row_faults();
        // Few faults force trial splitting; the full universe exercises
        // fault-major blocks. Both must agree with the 1-thread run.
        // serial_threshold(0) keeps these small grids on the parallel
        // path this test exists to exercise.
        for universe in [&faults[..3], &faults[..]] {
            let campaign = CampaignConfig {
                cycles: 12,
                trials: 10,
                seed: 77,
                write_fraction: 0.1,
            };
            let reference = CampaignEngine::new(campaign)
                .threads(1)
                .serial_threshold(0)
                .run(&cfg, universe);
            for threads in [2usize, 4, 7] {
                let result = CampaignEngine::new(campaign)
                    .threads(threads)
                    .serial_threshold(0)
                    .run(&cfg, universe);
                assert_eq!(
                    reference.determinism_profile(),
                    result.determinism_profile(),
                    "{} faults, {threads} threads",
                    universe.len()
                );
            }
        }
    }

    #[test]
    fn every_builtin_model_runs_deterministically_at_any_thread_count() {
        let cfg = config();
        let faults = row_faults();
        let campaign = CampaignConfig {
            cycles: 8,
            trials: 6,
            seed: 41,
            write_fraction: 0.1,
        };
        for model in crate::workload::builtin_models() {
            let reference = CampaignEngine::new(campaign)
                .workload_model(model.clone())
                .threads(1)
                .serial_threshold(0)
                .run(&cfg, &faults[..6]);
            let parallel = CampaignEngine::new(campaign)
                .workload_model(model.clone())
                .threads(4)
                .serial_threshold(0)
                .run(&cfg, &faults[..6]);
            assert_eq!(
                reference.determinism_profile(),
                parallel.determinism_profile(),
                "model {}",
                model.name()
            );
            // The campaign must actually exercise the fault universe: at
            // least one trial somewhere detects something.
            assert!(
                reference.per_fault.iter().any(|f| f.detected > 0),
                "model {} never detected anything",
                model.name()
            );
        }
    }

    #[test]
    fn distinct_models_measure_distinct_detection_behaviour() {
        // A colliding SA1 under a tiny hot window behaves differently from
        // uniform addressing; the engine must thread the model through to
        // the trials rather than silently falling back to uniform.
        let cfg = config();
        let faults = row_faults();
        let campaign = CampaignConfig {
            cycles: 10,
            trials: 12,
            seed: 99,
            write_fraction: 0.1,
        };
        let uniform = CampaignEngine::new(campaign).run(&cfg, &faults);
        let sequential = CampaignEngine::new(campaign)
            .pattern(AddressPattern::Sequential)
            .run(&cfg, &faults);
        assert_ne!(
            uniform.determinism_profile(),
            sequential.determinism_profile(),
            "sequential campaign produced the uniform profile"
        );
    }

    /// A universe mixing every lane-relevant shape: permanents across
    /// site classes, delayed onsets, transients, intermittents, couplings.
    fn mixed_scenarios() -> Vec<FaultScenario> {
        use crate::fault::{CellRef, CouplingKind, FaultProcess};
        let mut scenarios: Vec<FaultScenario> = row_faults()
            .into_iter()
            .map(FaultScenario::permanent)
            .collect();
        scenarios.push(FaultScenario {
            site: FaultSite::Cell {
                row: 3,
                col: 5,
                stuck: true,
            },
            process: FaultProcess::Permanent { onset: 4 },
        });
        scenarios.push(FaultScenario {
            site: FaultSite::Cell {
                row: 7,
                col: 2,
                stuck: false,
            },
            process: FaultProcess::TransientFlip { at: 3 },
        });
        scenarios.push(FaultScenario {
            site: FaultSite::DataRegisterBit {
                bit: 1,
                stuck: true,
            },
            process: FaultProcess::Intermittent {
                onset: 2,
                period: 4,
                duty: 2,
            },
        });
        scenarios.push(FaultScenario {
            site: FaultSite::Cell {
                row: 5,
                col: 9,
                stuck: false,
            },
            process: FaultProcess::Coupling {
                aggressor: CellRef { row: 2, col: 1 },
                kind: CouplingKind::Inversion,
            },
        });
        scenarios
    }

    #[test]
    fn sliced_engine_is_thread_count_and_lane_width_invariant() {
        let cfg = config();
        let scenarios = mixed_scenarios();
        let campaign = CampaignConfig {
            cycles: 12,
            trials: 10,
            seed: 77,
            write_fraction: 0.1,
        };
        let reference = CampaignEngine::new(campaign)
            .sliced(true)
            .threads(1)
            .serial_threshold(0)
            .run_scenarios(&cfg, &scenarios);
        assert_eq!(reference.per_fault.len(), scenarios.len());
        assert!(
            reference.per_fault.iter().any(|f| f.detected > 0),
            "sliced campaign never detected anything"
        );
        for threads in [2usize, 4, 8] {
            let result = CampaignEngine::new(campaign)
                .sliced(true)
                .threads(threads)
                .serial_threshold(0)
                .run_scenarios(&cfg, &scenarios);
            assert_eq!(
                reference.determinism_profile(),
                result.determinism_profile(),
                "{threads} threads"
            );
        }
        for width in [1usize, 8, 17, 64, 100, 128, 512] {
            let result = CampaignEngine::new(campaign)
                .sliced(true)
                .lane_width(width)
                .run_scenarios(&cfg, &scenarios);
            assert_eq!(
                reference.determinism_profile(),
                result.determinism_profile(),
                "lane width {width}"
            );
        }
    }

    #[derive(Debug)]
    struct CountingModel {
        inner: Arc<dyn WorkloadModel>,
        calls: Arc<std::sync::atomic::AtomicU64>,
    }

    impl WorkloadModel for CountingModel {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn stream(&self, spec: WorkloadSpec, seed: u64) -> crate::workload::OpStream {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.stream(spec, seed)
        }
    }

    #[test]
    fn sliced_campaign_generates_each_trial_stream_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cfg = config();
        let scenarios = mixed_scenarios();
        let calls = Arc::new(AtomicU64::new(0));
        let campaign = CampaignConfig {
            cycles: 12,
            trials: 10,
            seed: 77,
            write_fraction: 0.1,
        };
        // Lane width 8 splits the universe into many blocks; before the
        // op-stream arena every block regenerated all ten streams.
        let result = CampaignEngine::new(campaign)
            .workload_model(Arc::new(CountingModel {
                inner: Arc::new(UniformRandom),
                calls: calls.clone(),
            }))
            .sliced(true)
            .lane_width(8)
            .serial_threshold(0)
            .threads(4)
            .run_scenarios(&cfg, &scenarios);
        assert_eq!(result.per_fault.len(), scenarios.len());
        assert!(scenarios.len() > 8, "universe must span several blocks");
        assert_eq!(
            calls.load(Ordering::Relaxed),
            u64::from(campaign.trials),
            "one stream per trial, regardless of lane blocks"
        );
    }

    #[test]
    fn shared_arena_reuses_streams_across_runs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cfg = config();
        let scenarios = mixed_scenarios();
        let calls = Arc::new(AtomicU64::new(0));
        let model: Arc<dyn WorkloadModel> = Arc::new(CountingModel {
            inner: Arc::new(UniformRandom),
            calls: calls.clone(),
        });
        let arena = Arc::new(crate::arena::OpStreamArena::new());
        let campaign = CampaignConfig {
            cycles: 12,
            trials: 6,
            seed: 5,
            write_fraction: 0.1,
        };
        let low = CampaignEngine::new(campaign)
            .workload_model(model.clone())
            .sliced(true)
            .arena(arena.clone())
            .run_scenarios(&cfg, &scenarios);
        assert_eq!(calls.load(Ordering::Relaxed), 6);
        // A higher-fidelity rung with more trials only generates the new
        // trials; the first six replay from the shared arena.
        let high = CampaignEngine::new(campaign)
            .workload_model(model.clone())
            .sliced(true)
            .arena(arena.clone())
            .run_scenarios(&cfg, &scenarios);
        assert_eq!(calls.load(Ordering::Relaxed), 6, "second run regenerated");
        assert_eq!(low.determinism_profile(), high.determinism_profile());
        let more = CampaignConfig {
            trials: 9,
            ..campaign
        };
        CampaignEngine::new(more)
            .workload_model(model)
            .sliced(true)
            .arena(arena)
            .run_scenarios(&cfg, &scenarios);
        assert_eq!(calls.load(Ordering::Relaxed), 9, "only trials 6..9 are new");
    }

    #[test]
    fn occupancy_accounts_for_partial_blocks() {
        let engine = CampaignEngine::new(CampaignConfig::default());
        assert_eq!(
            engine.occupancy(272),
            LaneOccupancy {
                filled: 272,
                capacity: 320,
                blocks: 1,
                width: 512,
            }
        );
        assert_eq!(
            engine.clone().lane_width(64).occupancy(130),
            LaneOccupancy {
                filled: 130,
                capacity: 192,
                blocks: 3,
                width: 64,
            }
        );
        assert_eq!(
            engine.lane_width(512).occupancy(512),
            LaneOccupancy {
                filled: 512,
                capacity: 512,
                blocks: 1,
                width: 512,
            }
        );
    }

    #[test]
    fn serial_fallback_is_bit_identical_to_the_fanned_out_grid() {
        let cfg = config();
        let scenarios = mixed_scenarios();
        // Size the grid to sit just under the default threshold: the
        // plain engine takes the serial path, forcing the threshold to 0
        // fans the same grid out. Both backends must agree bit for bit.
        let trials = (DEFAULT_SERIAL_THRESHOLD / scenarios.len() as u64) as u32;
        assert!(trials >= 1, "universe outgrew the default threshold");
        let campaign = CampaignConfig {
            cycles: 12,
            trials,
            seed: 77,
            write_fraction: 0.1,
        };
        for sliced in [false, true] {
            let serial = CampaignEngine::new(campaign)
                .sliced(sliced)
                .run_scenarios(&cfg, &scenarios);
            let fanned = CampaignEngine::new(campaign)
                .sliced(sliced)
                .serial_threshold(0)
                .threads(4)
                .run_scenarios(&cfg, &scenarios);
            assert_eq!(
                serial.determinism_profile(),
                fanned.determinism_profile(),
                "sliced={sliced}"
            );
        }
        // Just past the threshold the engine fans out again: identical
        // results either way, the threshold is scheduling only.
        let over = CampaignConfig {
            trials: 300,
            ..campaign
        };
        let a = CampaignEngine::new(over).run_scenarios(&cfg, &scenarios);
        let b = CampaignEngine::new(over)
            .serial_threshold(u64::MAX)
            .run_scenarios(&cfg, &scenarios);
        assert_eq!(a.determinism_profile(), b.determinism_profile());
    }

    #[test]
    fn sliced_engine_preserves_scenario_order_and_scrub_contract() {
        let cfg = config();
        let scenarios = mixed_scenarios();
        let campaign = CampaignConfig {
            cycles: 16,
            trials: 6,
            seed: 5150,
            write_fraction: 0.1,
        };
        let result = CampaignEngine::new(campaign)
            .sliced(true)
            .scrub(4)
            .run_scenarios(&cfg, &scenarios);
        for (scenario, fr) in scenarios.iter().zip(&result.per_fault) {
            assert_eq!(fr.site, scenario.site, "per_fault order broken");
            assert_eq!(fr.process, scenario.process, "per_fault order broken");
            assert_eq!(fr.trials, campaign.trials);
        }
        // Scrubbing is part of the shared stream: results must still be
        // lane-width invariant under it.
        let narrow = CampaignEngine::new(campaign)
            .sliced(true)
            .scrub(4)
            .lane_width(8)
            .run_scenarios(&cfg, &scenarios);
        assert_eq!(result.determinism_profile(), narrow.determinism_profile());
    }

    mod trace_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            // The replayed trace is a pure function of
            // `(seed, fault, trial)`: random small campaigns must
            // produce identical event streams at every thread count,
            // with the serial path (threads = 1, default threshold)
            // as the reference against forced fan-out.
            #[test]
            fn trace_is_thread_invariant_over_random_campaigns(
                cycles in 1u64..12,
                trials in 1u32..6,
                seed in any::<u64>(),
                w in 0u32..17,
                take in 1usize..9,
                onset in 0u64..8,
            ) {
                let campaign = CampaignConfig {
                    cycles,
                    trials,
                    seed,
                    write_fraction: f64::from(w) / 16.0,
                };
                let cfg = config();
                let faults = row_faults();
                let scenarios: Vec<FaultScenario> = faults
                    .iter()
                    .take(take.min(faults.len()))
                    .enumerate()
                    .map(|(i, &site)| {
                        if i % 2 == 0 {
                            FaultScenario::permanent(site)
                        } else {
                            FaultScenario::transient(site, onset % cycles)
                        }
                    })
                    .collect();
                let reference = CampaignEngine::new(campaign)
                    .threads(1)
                    .trace_scenarios(&cfg, &scenarios);
                for threads in [2usize, 4, 8] {
                    let trace = CampaignEngine::new(campaign)
                        .threads(threads)
                        .serial_threshold(0)
                        .trace_scenarios(&cfg, &scenarios);
                    prop_assert_eq!(&trace, &reference, "threads = {}", threads);
                }
            }
        }
    }

    #[test]
    fn unsupported_fault_panics_with_backend_name() {
        let cfg = config();
        let backend = crate::backend::GateLevelBackend::try_new(&cfg).unwrap();
        let engine = CampaignEngine::new(CampaignConfig::default());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_on(
                &backend,
                &[FaultSite::Cell {
                    row: 0,
                    col: 0,
                    stuck: true,
                }],
            )
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("gate-level"), "{msg}");
    }
}
