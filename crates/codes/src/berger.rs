//! Berger codes — the systematic unordered code used by the zero-latency
//! decoder-checking scheme of \[NIC 94\].
//!
//! A Berger codeword appends, to `k` information bits, a binary check field
//! counting the number of **zeros** among the information bits. Unidirectional
//! errors (all flipped bits in the same direction) always change the zero
//! count in the wrong direction relative to the check field, so Berger codes
//! are unordered and detect all unidirectional errors — exactly what the
//! NOR-matrix scheme needs.
//!
//! The paper's Section III recalls the \[NIC 94\] implementation choice: a
//! ROM generating "a Berger code with information bits equal to the decoder
//! inputs", i.e. the matrix re-emits the address bits plus the zero-count
//! check bits.

use crate::{Code, CodeError};

/// A Berger code over `info_bits` information bits.
///
/// The check field has `⌈log2(info_bits + 1)⌉` bits and stores the number of
/// zeros in the information field. Total width is `info_bits + check_bits`,
/// capped at 64 to fit the crate's `u64` word transport (hence
/// `info_bits ≤ 57`, far beyond the ≤ 32 address bits any realistic decoder
/// has).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BergerCode {
    info_bits: u32,
    check_bits: u32,
}

impl BergerCode {
    /// Create a Berger code over `info_bits` information bits.
    ///
    /// # Errors
    /// [`CodeError::InvalidBergerWidth`] unless `1 ≤ info_bits ≤ 57`.
    pub fn new(info_bits: u32) -> Result<Self, CodeError> {
        if info_bits == 0 || info_bits > 57 {
            return Err(CodeError::InvalidBergerWidth { info_bits });
        }
        let check_bits = 32 - (info_bits).leading_zeros(); // ⌈log2(k+1)⌉
        Ok(BergerCode {
            info_bits,
            check_bits,
        })
    }

    /// Number of information bits.
    pub fn info_bits(&self) -> u32 {
        self.info_bits
    }

    /// Number of check bits, `⌈log2(k+1)⌉`.
    pub fn check_bits(&self) -> u32 {
        self.check_bits
    }

    /// Number of codewords, `2^info_bits`.
    pub fn count(&self) -> u128 {
        1u128 << self.info_bits
    }

    /// The check field for an information word: count of zeros among the low
    /// `info_bits` bits.
    pub fn check_field(&self, info: u64) -> u64 {
        let mask = (1u64 << self.info_bits) - 1;
        (self.info_bits - (info & mask).count_ones()) as u64
    }

    /// Encode: information in the low bits, check field above it.
    ///
    /// # Example
    /// ```
    /// use scm_codes::berger::BergerCode;
    /// let code = BergerCode::new(4)?;
    /// // info = 0b0101 has two zeros → check field 2 (0b010).
    /// assert_eq!(code.encode(0b0101), 0b010_0101);
    /// # Ok::<(), scm_codes::CodeError>(())
    /// ```
    pub fn encode(&self, info: u64) -> u64 {
        let mask = (1u64 << self.info_bits) - 1;
        let info = info & mask;
        info | (self.check_field(info) << self.info_bits)
    }

    /// Split an encoded word into (information, check) fields.
    pub fn split(&self, word: u64) -> (u64, u64) {
        let mask = (1u64 << self.info_bits) - 1;
        let info = word & mask;
        let check = (word >> self.info_bits) & ((1u64 << self.check_bits) - 1);
        (info, check)
    }
}

impl Code for BergerCode {
    fn width(&self) -> usize {
        (self.info_bits + self.check_bits) as usize
    }

    fn is_codeword(&self, word: u64) -> bool {
        if self.width() < 64 && word >> self.width() != 0 {
            return false;
        }
        let (info, check) = self.split(word);
        self.check_field(info) == check
    }

    fn name(&self) -> String {
        format!("berger({}+{})", self.info_bits, self.check_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unordered::is_unordered_set;
    use proptest::prelude::*;

    #[test]
    fn check_bit_counts() {
        assert_eq!(BergerCode::new(1).unwrap().check_bits(), 1);
        assert_eq!(BergerCode::new(3).unwrap().check_bits(), 2);
        assert_eq!(BergerCode::new(4).unwrap().check_bits(), 3);
        assert_eq!(BergerCode::new(7).unwrap().check_bits(), 3);
        assert_eq!(BergerCode::new(8).unwrap().check_bits(), 4);
        assert_eq!(BergerCode::new(15).unwrap().check_bits(), 4);
        assert_eq!(BergerCode::new(16).unwrap().check_bits(), 5);
        assert_eq!(BergerCode::new(32).unwrap().check_bits(), 6);
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(BergerCode::new(0).is_err());
        assert!(BergerCode::new(58).is_err());
        assert!(BergerCode::new(57).is_ok());
    }

    #[test]
    fn encode_examples() {
        let c = BergerCode::new(3).unwrap();
        assert_eq!(c.encode(0b000), 0b11_000); // 3 zeros
        assert_eq!(c.encode(0b111), 0b00_111); // 0 zeros
        assert_eq!(c.encode(0b101), 0b01_101); // 1 zero
    }

    #[test]
    fn all_codewords_unordered_small() {
        for k in 1..=8u32 {
            let c = BergerCode::new(k).unwrap();
            let words: Vec<u64> = (0..(1u64 << k)).map(|v| c.encode(v)).collect();
            assert!(is_unordered_set(&words), "berger({k}) not unordered");
        }
    }

    #[test]
    fn unidirectional_errors_detected_exhaustive_small() {
        // Flip any nonempty subset of bits all in the same direction:
        // the result must not be a codeword.
        let c = BergerCode::new(4).unwrap();
        let width = c.width();
        for info in 0..16u64 {
            let enc = c.encode(info);
            for subset in 1u64..(1 << width) {
                let ones_only = enc | subset; // 0→1 flips
                if ones_only != enc {
                    assert!(
                        !c.is_codeword(ones_only),
                        "0→1 escape info={info:b} subset={subset:b}"
                    );
                }
                let zeros_only = enc & !subset; // 1→0 flips
                if zeros_only != enc {
                    assert!(
                        !c.is_codeword(zeros_only),
                        "1→0 escape info={info:b} subset={subset:b}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_encode_is_codeword(k in 1u32..=57, info in any::<u64>()) {
            let c = BergerCode::new(k).unwrap();
            prop_assert!(c.is_codeword(c.encode(info)));
        }

        #[test]
        fn prop_split_roundtrip(k in 1u32..=57, info in any::<u64>()) {
            let c = BergerCode::new(k).unwrap();
            let enc = c.encode(info);
            let (i, chk) = c.split(enc);
            prop_assert_eq!(i, info & ((1u64 << k) - 1));
            prop_assert_eq!(chk, c.check_field(i));
        }

        #[test]
        fn prop_unidirectional_error_detected(k in 1u32..=20, info in any::<u64>(), subset in 1u64..u64::MAX, dir in any::<bool>()) {
            let c = BergerCode::new(k).unwrap();
            let enc = c.encode(info);
            let mask = (1u64 << c.width()) - 1;
            let subset = subset & mask;
            prop_assume!(subset != 0);
            let corrupted = if dir { enc | subset } else { enc & !subset };
            prop_assume!(corrupted != enc);
            prop_assert!(!c.is_codeword(corrupted));
        }
    }
}
