//! Ablations of the scheme's design choices — the knobs the paper fixes by
//! argument, measured:
//!
//! 1. **Odd-`a` rule**: replace `a = 9` by even neighbours and watch
//!    detection collapse at bit offsets `j ≥ 1` (the `gcd(2^j, a)` effect).
//! 2. **Decoder pairing arity** (`t`-input gates): the paper claims its
//!    2-input analysis is valid for wider gates; the block structure (and
//!    hence the analytical bound) should be arity-invariant at the worst
//!    block, while gate counts shrink.
//! 3. **Completion fix** (`a = C(q,r) − 1` re-map): how many distinct
//!    codewords the ROM exercises with and without it — the checker's
//!    self-testing diet.
//!
//! Run: `cargo run -p scm-bench --bin ablations`

use scm_area::RamOrganization;
use scm_codes::mapping::MappingKind;
use scm_codes::{CodewordMap, MOutOfN};
use scm_decoder::build_multilevel_decoder;
use scm_latency::distribution::analyze_decoder;
use scm_latency::goal::classify;
use scm_logic::stats::gate_stats;
use scm_logic::Netlist;
use scm_memory::campaign::{decoder_fault_universe, CampaignConfig};
use scm_memory::design::RamConfig;
use scm_memory::engine::CampaignEngine;
use scm_memory::fault::FaultSite;

fn main() {
    ablation_odd_a();
    ablation_arity();
    ablation_completion_fix();
}

fn ablation_odd_a() {
    println!("## Ablation 1 — the odd-a rule (8-bit decoder)");
    println!();
    println!(
        "{:>4} | {:>12} | {:>14} | {:>14} | {:>10} | grade",
        "a", "paper bound", "err-escape", "empirical", "zero-lat %"
    );
    println!("{}", "-".repeat(82));
    let mut nl = Netlist::new();
    let addr = nl.inputs(8);
    let dec = build_multilevel_decoder(&mut nl, &addr, 2);
    // Empirical companion: a 1K×8 RAM whose row decoder is exactly this
    // 8-bit structure, campaigned over every row-decoder stuck-at-1 on the
    // parallel engine. The mapping layer rejects even moduli below the line
    // count outright (the rule is structural, not advisory), so those rows
    // print "rejected".
    let org = RamOrganization::new(1024, 8, 4);
    let code = MOutOfN::centered(7).expect("7-wide centred code exists");
    let col_map = CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), 9, 4).unwrap();
    let sa1: Vec<FaultSite> = decoder_fault_universe(8)
        .into_iter()
        .filter(|f| f.stuck_one)
        .map(FaultSite::RowDecoder)
        .collect();
    let campaign = CampaignConfig {
        cycles: 10,
        trials: 24,
        seed: 0xA0DD,
        write_fraction: 0.1,
    };
    let engine = CampaignEngine::new(campaign);
    for a in [7u64, 8, 9, 10, 11, 12, 13] {
        let report = analyze_decoder(&dec, MappingKind::ModA { a });
        let empirical = match CodewordMap::mod_a(code, a, org.rows()) {
            Ok(row_map) => {
                let config = RamConfig::new(org, row_map, col_map.clone());
                let result = engine.run(&config, &sa1);
                format!("{:>14.4}", result.worst_error_escape())
            }
            Err(_) => format!("{:>14}", "rejected"),
        };
        println!(
            "{a:>4} | {:>12.4} | {:>14.4} | {empirical} | {:>10.1} | {:?}",
            report.paper_escape_bound,
            report.worst_error_escape,
            100.0 * report.zero_latency_fraction(),
            classify(&report)
        );
    }
    println!();
    println!("even moduli are Unprotected: some faults become undetectable — the");
    println!("mapping constructor refuses them, and the analytical row shows why.");
    println!("'empirical' is the engine's worst per-fault trial-escape frequency over");
    println!("all ~320 SA1 row-decoder faults at c = 10 (24 trials/fault); as a max");
    println!("over the whole universe it rides sampling noise a couple of sigma above");
    println!("the per-cycle 'err-escape', and collapses onto it as trials grow.");
    println!();
}

fn ablation_arity() {
    println!("## Ablation 2 — decoder pairing arity (8-bit decoder, a = 9)");
    println!();
    println!(
        "{:>5} | {:>7} | {:>9} | {:>12} | {:>14}",
        "arity", "gates", "GEs", "paper bound", "err-escape"
    );
    println!("{}", "-".repeat(60));
    for arity in [2usize, 3, 4, 8] {
        let mut nl = Netlist::new();
        let addr = nl.inputs(8);
        let dec = build_multilevel_decoder(&mut nl, &addr, arity);
        let stats = gate_stats(&nl);
        let report = analyze_decoder(&dec, MappingKind::ModA { a: 9 });
        println!(
            "{arity:>5} | {:>7} | {:>9.1} | {:>12.4} | {:>14.4}",
            stats.gates,
            stats.gate_equivalents,
            report.paper_escape_bound,
            report.worst_error_escape
        );
    }
    println!();
    println!("wider gates shrink the tree but merge levels: fewer intermediate");
    println!("blocks can only *remove* colliding fault sites, so the 2-input");
    println!("analysis upper-bounds every arity — exactly the paper's claim.");
    println!();
}

fn ablation_completion_fix() {
    println!("## Ablation 3 — the completion fix (3-out-of-5, a = 9, 128 lines)");
    println!();
    let code = MOutOfN::new(3, 5).unwrap();
    let with_fix = CodewordMap::mod_a(code, 9, 128).unwrap();
    let distinct_with: std::collections::HashSet<u64> = with_fix.table().into_iter().collect();
    // Without the fix: simulate by mapping through a = 9 with exactly 9
    // ranks (drop the spare-word remap) — reconstruct via rank_for modulo.
    let distinct_without: std::collections::HashSet<u64> = (0..128u64)
        .map(|addr| code.word_at((addr % 9) as u128).unwrap())
        .collect();
    println!(
        "  distinct ROM codewords with fix:    {}/{}",
        distinct_with.len(),
        code.count()
    );
    println!(
        "  distinct ROM codewords without fix: {}/{}",
        distinct_without.len(),
        code.count()
    );
    println!();
    println!("the fix makes the q-out-of-r checker see its complete codeword set");
    println!("during normal operation (the self-testing requirement); detection");
    println!("probabilities are otherwise unchanged except on the one re-mapped line.");
}
