//! The two-rail checker cell and tree.
//!
//! The cell takes two rail pairs and produces one; its output is a valid
//! pair iff both inputs are valid (single-fault assumption). A balanced tree
//! of cells compresses the error indications of all the design's checkers
//! into the single pair of Figure 1. The cell is the canonical morphic
//! network
//!
//! ```text
//! z.t = a.t·b.t + a.f·b.f        z.f = a.t·b.f + a.f·b.t
//! ```
//!
//! which is totally self-checking under codeword (complementary) inputs: all
//! four input combinations `(01,01) (01,10) (10,01) (10,10)` occur in normal
//! operation and exercise every gate.

use scm_codes::TwoRail;
use scm_logic::{Netlist, SignalId};

/// Emit one two-rail checker cell; returns the output `(t, f)` rails.
pub fn two_rail_cell(
    netlist: &mut Netlist,
    a: (SignalId, SignalId),
    b: (SignalId, SignalId),
) -> (SignalId, SignalId) {
    let tt = netlist.and2(a.0, b.0);
    let ff = netlist.and2(a.1, b.1);
    let tf = netlist.and2(a.0, b.1);
    let ft = netlist.and2(a.1, b.0);
    let t = netlist.or2(tt, ff);
    let f = netlist.or2(tf, ft);
    (t, f)
}

/// Emit a balanced tree of cells over many rail pairs; returns the root
/// pair. A single pair passes through; an empty slice yields a constant
/// valid pair (true rail high).
pub fn two_rail_tree(
    netlist: &mut Netlist,
    pairs: &[(SignalId, SignalId)],
) -> (SignalId, SignalId) {
    match pairs.len() {
        0 => {
            let t = netlist.constant(true);
            let f = netlist.constant(false);
            (t, f)
        }
        1 => pairs[0],
        n => {
            let (lo, hi) = pairs.split_at(n / 2);
            let l = two_rail_tree(netlist, lo);
            let r = two_rail_tree(netlist, hi);
            two_rail_cell(netlist, l, r)
        }
    }
}

/// Behavioural twin of [`two_rail_tree`] (delegates to
/// [`TwoRail::combine_all`]).
pub fn two_rail_tree_behavioral(pairs: &[TwoRail]) -> TwoRail {
    TwoRail::combine_all(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scm_logic::fault::fault_universe;

    /// Build a k-pair tree with 2k primary inputs.
    fn tree(k: usize) -> (Netlist, (SignalId, SignalId), Vec<(SignalId, SignalId)>) {
        let mut nl = Netlist::new();
        let mut pairs = Vec::new();
        for _ in 0..k {
            let t = nl.input();
            let f = nl.input();
            pairs.push((t, f));
        }
        let root = two_rail_tree(&mut nl, &pairs);
        nl.expose(root.0);
        nl.expose(root.1);
        (nl, root, pairs)
    }

    fn pattern_for(values: &[TwoRail]) -> u64 {
        values.iter().enumerate().fold(0u64, |acc, (k, p)| {
            acc | ((p.t as u64) << (2 * k)) | ((p.f as u64) << (2 * k + 1))
        })
    }

    #[test]
    fn netlist_matches_behavioral_exhaustive_3_pairs() {
        let (nl, _, _) = tree(3);
        for raw in 0u64..(1 << 6) {
            let pairs: Vec<TwoRail> = (0..3)
                .map(|k| TwoRail {
                    t: raw >> (2 * k) & 1 == 1,
                    f: raw >> (2 * k + 1) & 1 == 1,
                })
                .collect();
            let expect = two_rail_tree_behavioral(&pairs);
            let out = nl.eval_word(raw, None).outputs();
            assert_eq!((out[0], out[1]), (expect.t, expect.f), "raw {raw:06b}");
        }
    }

    #[test]
    fn tree_is_fully_self_testing() {
        // Every stuck-at fault in a 4-pair tree is detected by some valid
        // (all-complementary) input combination — the TSC property.
        let (nl, _, _) = tree(4);
        let codewords: Vec<u64> = (0u64..16)
            .map(|v| {
                let pairs: Vec<TwoRail> =
                    (0..4).map(|k| TwoRail::encode(v >> k & 1 == 1)).collect();
                pattern_for(&pairs)
            })
            .collect();
        for fault in fault_universe(&nl) {
            let mut detected = false;
            for &w in &codewords {
                let eval = nl.eval_word(w, Some(fault));
                let out = eval.outputs();
                let pair = TwoRail {
                    t: out[0],
                    f: out[1],
                };
                if pair.is_error() {
                    detected = true;
                    break;
                }
            }
            assert!(detected, "fault {fault} not self-tested");
        }
    }

    #[test]
    fn empty_tree_is_constant_valid() {
        let mut nl = Netlist::new();
        let root = two_rail_tree(&mut nl, &[]);
        nl.expose(root.0);
        nl.expose(root.1);
        assert_eq!(nl.eval(&[]).outputs(), vec![true, false]);
    }
}
