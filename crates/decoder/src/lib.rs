//! Address decoder generator following the paper's Section III.2 structure.
//!
//! The paper computes detection latencies on a *structured* decoder
//! description:
//!
//! * **0-level**: one decoding block per address input, made of one inverter
//!   — its two outputs are the direct and complementary input values.
//! * **k-level**: blocks of the previous level are associated into pairs;
//!   each pair gets a new block of 2-input AND gates, one gate per
//!   combination of the pair's outputs. A block therefore *decodes* a set of
//!   address bits and has exactly one active output in the fault-free
//!   circuit (**property a**).
//! * **last level**: a single block whose `2^n` outputs are the decoder
//!   lines.
//!
//! When `n` is not a power of two some pairs mix blocks from different
//! levels; the generator handles any `n` by carrying an odd block forward.
//! Property **b** (a block forced all-zero forces the decoder lines
//! all-zero) holds structurally for AND trees and is verified by tests and
//! by the fault-injection campaigns downstream.
//!
//! Two generators are provided:
//! * [`build_multilevel_decoder`] — the paper's tree construction, with
//!   configurable pairing arity (`2` reproduces the paper's analysis;
//!   higher arities model "gates with more inputs", for which the paper's
//!   analysis is still valid as it considers a superset of fault sites).
//! * [`build_single_level_decoder`] — the flat one-AND-per-line decoder of
//!   \[CHE 85\]-era designs, used as an ablation baseline.
//!
//! # Example
//!
//! ```
//! use scm_logic::Netlist;
//! use scm_decoder::build_multilevel_decoder;
//!
//! let mut nl = Netlist::new();
//! let addr = nl.inputs(4);
//! let dec = build_multilevel_decoder(&mut nl, &addr, 2);
//! nl.expose_all(dec.outputs());
//!
//! // Fault-free: exactly line 0b1010 fires for address 10.
//! let eval = nl.eval_word(0b1010, None);
//! let active: Vec<usize> = (0..16)
//!     .filter(|&k| eval.value(dec.outputs()[k]))
//!     .collect();
//! assert_eq!(active, vec![10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault_map;
pub mod properties;

use scm_logic::{Netlist, SignalId};

pub use fault_map::DecoderFaultSite;

/// Identifier of a decoding block within one decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// One decoding block of the Section III.2 structure.
#[derive(Debug, Clone)]
pub struct DecodingBlock {
    /// This block's id.
    pub id: BlockId,
    /// Level in the tree (0 = inverter blocks).
    pub level: u32,
    /// The block decodes address bits `lo..hi` (LSB-first, contiguous).
    pub lo: u32,
    /// Exclusive upper bit index.
    pub hi: u32,
    /// Output signals, indexed by the decoded value of bits `lo..hi`.
    pub outputs: Vec<SignalId>,
    /// Child blocks combined by this block (empty for 0-level).
    pub children: Vec<BlockId>,
}

impl DecodingBlock {
    /// Number of address bits this block decodes (the paper's `i`).
    pub fn bits(&self) -> u32 {
        self.hi - self.lo
    }

    /// Bit offset of the decoded field (the paper's `j`).
    pub fn offset(&self) -> u32 {
        self.lo
    }

    /// Number of outputs, `2^bits`.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }
}

/// A generated decoder: netlist signals plus the block structure that the
/// analytical latency engine consumes.
#[derive(Debug, Clone)]
pub struct DecoderStructure {
    n: u32,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    blocks: Vec<DecodingBlock>,
    flat: bool,
}

impl DecoderStructure {
    /// Number of address bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of decoder output lines, `2^n`.
    pub fn num_outputs(&self) -> u64 {
        1u64 << self.n
    }

    /// Address input signals (LSB first).
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Decoder line signals; index = decoded address value.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// All decoding blocks, 0-level first.
    pub fn blocks(&self) -> &[DecodingBlock] {
        &self.blocks
    }

    /// A block by id.
    pub fn block(&self, id: BlockId) -> &DecodingBlock {
        &self.blocks[id.0]
    }

    /// The last-level block (whose outputs are the decoder lines).
    pub fn last_block(&self) -> &DecodingBlock {
        self.blocks.last().expect("decoder always has blocks")
    }

    /// Whether this is the flat single-level variant.
    pub fn is_single_level(&self) -> bool {
        self.flat
    }
}

/// Build the paper's multilevel decoder over existing address signals.
///
/// `arity` is the number of *child blocks* combined per new block (the
/// paper's `t`-tuples of decoding blocks); `2` reproduces the structure the
/// paper's latency computation assumes.
///
/// # Panics
/// Panics if `address` is empty or longer than 24 bits (2^24 lines — beyond
/// any embedded RAM decoder, and a memory guard for `Vec` sizing), or if
/// `arity < 2`.
pub fn build_multilevel_decoder(
    netlist: &mut Netlist,
    address: &[SignalId],
    arity: usize,
) -> DecoderStructure {
    let n = address.len() as u32;
    assert!(n >= 1, "decoder needs at least one address bit");
    assert!(
        n <= 24,
        "decoder with {n} address bits is unreasonably large"
    );
    assert!(arity >= 2, "pairing arity must be at least 2");

    let mut blocks: Vec<DecodingBlock> = Vec::new();

    // 0-level: one inverter block per input. The direct line is buffered so
    // that it is a fault site *distinct* from the raw address input: a
    // stuck-at on the direct line must not propagate into the inverter
    // (the paper's model treats the two block outputs as separate lines;
    // a fault on the shared input is an *address* fault, outside the
    // decoder-checking scheme's coverage claims).
    for (i, &a) in address.iter().enumerate() {
        let na = netlist.inv(a);
        let direct = netlist.buf(a);
        blocks.push(DecodingBlock {
            id: BlockId(blocks.len()),
            level: 0,
            lo: i as u32,
            hi: i as u32 + 1,
            outputs: vec![na, direct], // value 0 → complemented, value 1 → direct
            children: Vec::new(),
        });
    }

    // Higher levels: combine `arity` adjacent blocks at a time.
    let mut current: Vec<BlockId> = blocks.iter().map(|b| b.id).collect();
    let mut level = 1u32;
    while current.len() > 1 {
        let mut next: Vec<BlockId> = Vec::with_capacity(current.len().div_ceil(arity));
        for chunk in current.chunks(arity) {
            if chunk.len() == 1 {
                // Odd block carries forward unchanged (mixed-level pairing).
                next.push(chunk[0]);
                continue;
            }
            let lo = blocks[chunk[0].0].lo;
            let hi = blocks[chunk[chunk.len() - 1].0].hi;
            // Contiguity invariant: chunks are adjacent ranges by construction.
            debug_assert!(chunk
                .windows(2)
                .all(|w| blocks[w[0].0].hi == blocks[w[1].0].lo));
            let bits = hi - lo;
            let mut outputs = Vec::with_capacity(1usize << bits);
            for value in 0u64..(1u64 << bits) {
                let mut literals = Vec::with_capacity(chunk.len());
                for &cid in chunk {
                    let child = &blocks[cid.0];
                    let sub = (value >> (child.lo - lo)) & ((1u64 << child.bits()) - 1);
                    literals.push(child.outputs[sub as usize]);
                }
                let g = if literals.len() == 2 {
                    netlist.and2(literals[0], literals[1])
                } else {
                    netlist.and_n(&literals)
                };
                outputs.push(g);
            }
            let id = BlockId(blocks.len());
            blocks.push(DecodingBlock {
                id,
                level,
                lo,
                hi,
                outputs,
                children: chunk.to_vec(),
            });
            next.push(id);
        }
        current = next;
        level += 1;
    }

    let outputs = if n == 1 {
        // Degenerate single-bit decoder: the 0-level block is the last level.
        blocks[0].outputs.clone()
    } else {
        blocks[current[0].0].outputs.clone()
    };

    DecoderStructure {
        n,
        inputs: address.to_vec(),
        outputs,
        blocks,
        flat: false,
    }
}

/// Build the flat single-level decoder: inverters plus one `n`-input AND
/// gate per line.
///
/// # Panics
/// Same limits as [`build_multilevel_decoder`].
pub fn build_single_level_decoder(netlist: &mut Netlist, address: &[SignalId]) -> DecoderStructure {
    let n = address.len() as u32;
    assert!(n >= 1, "decoder needs at least one address bit");
    assert!(
        n <= 24,
        "decoder with {n} address bits is unreasonably large"
    );

    let mut blocks: Vec<DecodingBlock> = Vec::new();
    for (i, &a) in address.iter().enumerate() {
        let na = netlist.inv(a);
        let direct = netlist.buf(a); // same separation as the multilevel build
        blocks.push(DecodingBlock {
            id: BlockId(blocks.len()),
            level: 0,
            lo: i as u32,
            hi: i as u32 + 1,
            outputs: vec![na, direct],
            children: Vec::new(),
        });
    }

    let children: Vec<BlockId> = blocks.iter().map(|b| b.id).collect();
    let mut outputs = Vec::with_capacity(1usize << n);
    for value in 0u64..(1u64 << n) {
        let literals: Vec<SignalId> = (0..n)
            .map(|i| blocks[i as usize].outputs[((value >> i) & 1) as usize])
            .collect();
        outputs.push(netlist.and_n(&literals));
    }
    let id = BlockId(blocks.len());
    blocks.push(DecodingBlock {
        id,
        level: 1,
        lo: 0,
        hi: n,
        outputs: outputs.clone(),
        children,
    });

    DecoderStructure {
        n,
        inputs: address.to_vec(),
        outputs,
        blocks,
        flat: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot_check(n: u32, arity: usize) {
        let mut nl = Netlist::new();
        let addr = nl.inputs(n as usize);
        let dec = build_multilevel_decoder(&mut nl, &addr, arity);
        nl.expose_all(dec.outputs());
        for a in 0..(1u64 << n) {
            let eval = nl.eval_word(a, None);
            for (line, &sig) in dec.outputs().iter().enumerate() {
                assert_eq!(
                    eval.value(sig),
                    line as u64 == a,
                    "n={n} arity={arity} addr={a} line={line}"
                );
            }
        }
    }

    #[test]
    fn one_hot_all_small_sizes_arity2() {
        for n in 1..=8u32 {
            one_hot_check(n, 2);
        }
    }

    #[test]
    fn one_hot_higher_arities() {
        for arity in [3usize, 4] {
            for n in [2u32, 4, 5, 7] {
                one_hot_check(n, arity);
            }
        }
    }

    #[test]
    fn single_level_matches_multilevel() {
        for n in 1..=7u32 {
            let mut nl1 = Netlist::new();
            let a1 = nl1.inputs(n as usize);
            let d1 = build_multilevel_decoder(&mut nl1, &a1, 2);
            let mut nl2 = Netlist::new();
            let a2 = nl2.inputs(n as usize);
            let d2 = build_single_level_decoder(&mut nl2, &a2);
            for a in 0..(1u64 << n) {
                let e1 = nl1.eval_word(a, None);
                let e2 = nl2.eval_word(a, None);
                for line in 0..(1usize << n) {
                    assert_eq!(
                        e1.value(d1.outputs()[line]),
                        e2.value(d2.outputs()[line]),
                        "n={n} addr={a} line={line}"
                    );
                }
            }
        }
    }

    #[test]
    fn block_structure_power_of_two() {
        let mut nl = Netlist::new();
        let addr = nl.inputs(4);
        let dec = build_multilevel_decoder(&mut nl, &addr, 2);
        // 0-level: 4 blocks of 1 bit; level 1: two blocks of 2 bits;
        // level 2: one block of 4 bits.
        let sizes: Vec<(u32, u32)> = dec.blocks().iter().map(|b| (b.level, b.bits())).collect();
        assert_eq!(
            sizes,
            vec![(0, 1), (0, 1), (0, 1), (0, 1), (1, 2), (1, 2), (2, 4)]
        );
        assert_eq!(dec.last_block().num_outputs(), 16);
    }

    #[test]
    fn block_structure_mixed_levels_n5() {
        let mut nl = Netlist::new();
        let addr = nl.inputs(5);
        let dec = build_multilevel_decoder(&mut nl, &addr, 2);
        // L1 pairs bits {0,1} and {2,3}, carries bit 4; L2 pairs the two
        // 2-bit blocks; L3 pairs the 4-bit block with the carried 1-bit one.
        let last = dec.last_block();
        assert_eq!(last.bits(), 5);
        assert_eq!(last.num_outputs(), 32);
        let child_bits: Vec<u32> = last.children.iter().map(|&c| dec.block(c).bits()).collect();
        assert_eq!(child_bits, vec![4, 1]);
    }

    #[test]
    fn degenerate_one_bit_decoder() {
        let mut nl = Netlist::new();
        let addr = nl.inputs(1);
        let dec = build_multilevel_decoder(&mut nl, &addr, 2);
        nl.expose_all(dec.outputs());
        assert_eq!(nl.eval(&[false]).outputs(), vec![true, false]);
        assert_eq!(nl.eval(&[true]).outputs(), vec![false, true]);
    }

    #[test]
    fn gate_counts_match_structure() {
        // For n = 4, arity 2: 4 inverters + 2*4 + 16 AND gates.
        let mut nl = Netlist::new();
        let addr = nl.inputs(4);
        let _ = build_multilevel_decoder(&mut nl, &addr, 2);
        let stats = scm_logic::stats::gate_stats(&nl);
        assert_eq!(stats.by_kind["inv"], 4);
        assert_eq!(stats.by_kind["and2"], 8 + 16);
    }
}
