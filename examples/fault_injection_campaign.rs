//! A full fault-injection campaign on a self-checking RAM: inject every
//! decoder fault plus sampled cell/ROM/register faults, run seeded random
//! workloads, and summarise detection behaviour by fault class.
//!
//! This is the experiment a verification team would run before taping out
//! the scheme — it shows the coverage structure the paper argues for:
//! parity owns the data path, the NOR matrices own the decoders, and the
//! only escapes are stuck-at-1 codeword collisions, at the predicted rate.
//!
//! Run: `cargo run --release --example fault_injection_campaign`

use scm_core::prelude::*;
use scm_memory::campaign::{run_campaign, standard_fault_universe, CampaignConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = SelfCheckingRamBuilder::new(256, 8)
        .mux_factor(4)
        .latency_budget(10, 1e-5)?
        .build()?;
    println!("{}", design.report());

    let config = design.config();
    let faults = standard_fault_universe(config, 24, 0xFEED);
    println!("fault universe: {} faults", faults.len());

    let result = run_campaign(
        config,
        &faults,
        CampaignConfig {
            cycles: 10,
            trials: 48,
            seed: 42,
            write_fraction: 0.15,
        },
    );

    println!();
    println!(
        "{:<14} | {:>6} | {:>14} | {:>16}",
        "class", "faults", "mean escape", "(not detected in c)"
    );
    println!("{}", "-".repeat(60));
    for (class, (count, mean_escape)) in result.by_class() {
        println!("{class:<14} | {count:>6} | {mean_escape:>14.4} |");
    }
    println!();
    println!(
        "worst per-fault escape (paper's Pndc sense): {:.4}",
        result.worst_escape()
    );
    println!(
        "worst per-fault ERROR escape (safety sense): {:.4}",
        result.worst_error_escape()
    );
    println!(
        "faults never detected in any trial:          {:.1}%",
        100.0 * result.never_detected_fraction()
    );
    println!();
    println!("notes: 'never detected' is dominated by stuck-at-0 faults on large");
    println!("blocks — they are harmless until their line is addressed, and their");
    println!("errors are caught the same cycle (error escape 0). The safety-relevant");
    println!("column is the error escape, bounded by the selected code's guarantee.");
    Ok(())
}
