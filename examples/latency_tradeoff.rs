//! The paper's headline trade-off, interactively: sweep the tolerated
//! detection latency for *your* RAM and see what each step costs.
//!
//! The scenario: an automotive controller with a 4K×32 working RAM. Safety
//! analysis allows decoder faults to stay latent for at most `c` cycles
//! with escape probability 1e-9 — but `c` is negotiable between 2 (almost
//! TSC) and 50 (background scrubbing picks it up). This prints the
//! area/latency menu the paper's scheme offers.
//!
//! Run: `cargo run --example latency_tradeoff`

use scm_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("4Kx32 RAM, Pndc = 1e-9, worst-block-exact policy");
    println!();
    println!(
        "{:>3} | {:<12} | {:>4} | {:>14} | {:>12} | {:>10}",
        "c", "code", "a", "escape/cycle", "dec-check %", "total %"
    );
    println!("{}", "-".repeat(72));
    for c in [2u32, 3, 5, 8, 10, 15, 20, 30, 40, 50] {
        let design = SelfCheckingRamBuilder::new(4096, 32)
            .mux_factor(8)
            .latency_budget(c, 1e-9)?
            .build()?;
        let r = design.report();
        let plan = design.plan().expect("budget-driven design has a plan");
        println!(
            "{c:>3} | {:<12} | {:>4} | {:>14.6} | {:>12.2} | {:>10.2}",
            r.row_code,
            plan.a(),
            plan.escape_per_cycle(),
            r.decoder_checking_percent(),
            r.total_percent()
        );
    }
    println!();
    println!("the two published endpoints for comparison:");
    let zero = SelfCheckingRamBuilder::new(4096, 32)
        .mux_factor(8)
        .zero_latency()
        .build()?;
    println!(
        "  zero latency ([NIC 94]):      {} on rows, {:.2}% decoder-checking area",
        zero.report().row_code,
        zero.report().decoder_checking_percent()
    );
    let parity = SelfCheckingRamBuilder::new(4096, 32)
        .mux_factor(8)
        .input_parity_only()
        .build()?;
    println!(
        "  input parity ([CHE 85]):      {} on rows, {:.2}% decoder-checking area",
        parity.report().row_code,
        parity.report().decoder_checking_percent()
    );
    Ok(())
}
