//! # Sharded multi-bank memory system runtime
//!
//! The paper evaluates its area-versus-detection-latency trade-off one
//! memory at a time. A production system is many banks behind an address
//! interleaver, with background scrubs and checkpoints competing with
//! mission traffic for cycles. This crate composes the existing
//! `scm_memory` fault-simulation backends into that system and measures
//! the quantities only the *system* view exposes:
//!
//! * [`MemorySystem`] — N banks (heterogeneous geometry/code allowed)
//!   behind an [`Interleaver`], each bank a prefilled behavioural
//!   backend;
//! * [`SystemClock`] — the discrete-event merge of mission traffic and
//!   scrub reads, one operation per system cycle, with
//!   [`CheckpointSchedule`] anchoring Aupy-style lost-work accounting;
//! * [`SystemCampaign`] — the parallel `bank × fault × trial` campaign,
//!   bit-identical at every thread count (traffic seeds pure in
//!   `(seed, bank, fault, trial)`, prefill seeds pure in `(seed, bank)`);
//! * [`system_report`] — the byte-stable rendering behind `scm system`;
//! * [`DiagPolicy`] / [`DiagCampaign`] — March-BIST diagnosis sessions
//!   scheduled on the same clock (stealing slots like scrubs, but in
//!   session-length bursts), with spare repair and time-to-repair /
//!   lost-work accounting ([`diag`]).
//!
//! Detection latency is measured on the **global clock**: a bank starved
//! of traffic by the interleaving (or left unscrubbed) detects late even
//! when its code is strong — the joint effect of detection latency and
//! recovery-interval policy that Aupy et al. show must be co-optimised.
//!
//! ```
//! use scm_system::{Interleaving, SystemCampaign, SystemConfig};
//! use scm_memory::campaign::CampaignConfig;
//! use scm_memory::design::RamConfig;
//! use scm_area::RamOrganization;
//! use scm_codes::{CodewordMap, MOutOfN};
//!
//! let org = RamOrganization::new(64, 8, 4);
//! let code = MOutOfN::new(3, 5)?;
//! let bank = RamConfig::new(
//!     org,
//!     CodewordMap::mod_a(code, 9, org.rows())?,
//!     CodewordMap::mod_a(code, 9, 4)?,
//! );
//! let system = SystemConfig::homogeneous(bank, 4, Interleaving::LowOrder)
//!     .scrubbed(4)
//!     .checkpointed(32);
//! let campaign = CampaignConfig { cycles: 200, trials: 4, seed: 7, write_fraction: 0.1 };
//! let engine = SystemCampaign::new(system, campaign);
//! let universe = engine.decoder_universe(8);
//! let result = engine.run(&universe);
//! assert!(result.detected_fraction() > 0.0);
//! # Ok::<(), scm_codes::CodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod diag;
pub mod engine;
pub mod interleave;
pub mod report;
pub mod seu;
pub mod system;

pub use clock::{CheckpointSchedule, ScrubSchedule, SystemClock, SystemEvent};
pub use diag::{DiagCampaign, DiagFaultResult, DiagPolicy, DiagSystemResult};
pub use engine::{
    BankSummary, SystemCampaign, SystemFault, SystemFaultResult, SystemResult,
    DEFAULT_SERIAL_THRESHOLD,
};
pub use interleave::{Interleaver, Interleaving};
pub use report::system_report;
pub use seu::SeuProcess;
pub use system::{seed_mix, MemorySystem, ServiceSummary, SystemConfig};
