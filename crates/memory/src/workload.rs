//! Workload generators: the address/operation streams driving detection
//! latency.
//!
//! The paper's analysis assumes **uniformly random addresses each cycle**;
//! [`AddressPattern::UniformRandom`] realises exactly that. The other
//! patterns probe how real access behaviour (sequential scans, tight loops,
//! hot spots) changes empirical latency — an analysis the paper does not
//! attempt, included here as an extension experiment.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read the word at the address.
    Read(u64),
    /// Write a value at the address.
    Write(u64, u64),
}

impl Op {
    /// The address touched.
    pub fn addr(&self) -> u64 {
        match *self {
            Op::Read(a) | Op::Write(a, _) => a,
        }
    }
}

/// Address-sequence shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressPattern {
    /// Fresh uniform address every cycle (the paper's model).
    UniformRandom,
    /// `0, 1, 2, …` wrapping.
    Sequential,
    /// `0, k, 2k, …` wrapping (stride in words).
    Strided {
        /// Stride between consecutive accesses.
        stride: u64,
    },
    /// Uniform within a window of the given size starting at 0 (models a
    /// hot working set that never touches most rows).
    HotSpot {
        /// Window size in words.
        window: u64,
    },
}

/// A deterministic, seeded operation stream.
#[derive(Debug, Clone)]
pub struct Workload {
    pattern: AddressPattern,
    words: u64,
    word_mask: u64,
    write_fraction: f64,
    rng: SmallRng,
    counter: u64,
}

impl Workload {
    /// New workload over a `words`-word memory with `word_bits`-bit data.
    ///
    /// `write_fraction` in `[0, 1]` selects the probability a cycle is a
    /// write (with random data).
    ///
    /// # Panics
    /// Panics if `words == 0` or `write_fraction` is outside `[0, 1]`.
    pub fn new(
        pattern: AddressPattern,
        words: u64,
        word_bits: u32,
        write_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(words > 0, "empty memory");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction {write_fraction} outside [0, 1]"
        );
        let word_mask = if word_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << word_bits) - 1
        };
        Workload {
            pattern,
            words,
            word_mask,
            write_fraction,
            rng: SmallRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// The paper's model: uniform random addresses, read-heavy (10 % writes).
    pub fn uniform(words: u64, word_bits: u32, seed: u64) -> Self {
        Workload::new(AddressPattern::UniformRandom, words, word_bits, 0.1, seed)
    }

    fn next_addr(&mut self) -> u64 {
        let a = match self.pattern {
            AddressPattern::UniformRandom => self.rng.gen_range(0..self.words),
            AddressPattern::Sequential => self.counter % self.words,
            AddressPattern::Strided { stride } => (self.counter * stride) % self.words,
            AddressPattern::HotSpot { window } => {
                let w = window.clamp(1, self.words);
                self.rng.gen_range(0..w)
            }
        };
        self.counter += 1;
        a
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        let addr = self.next_addr();
        if self.rng.gen_bool(self.write_fraction) {
            Op::Write(addr, self.rng.gen::<u64>() & self.word_mask)
        } else {
            Op::Read(addr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut w1 = Workload::uniform(256, 16, 42);
        let mut w2 = Workload::uniform(256, 16, 42);
        for _ in 0..100 {
            assert_eq!(w1.next_op(), w2.next_op());
        }
    }

    #[test]
    fn addresses_in_range() {
        for pattern in [
            AddressPattern::UniformRandom,
            AddressPattern::Sequential,
            AddressPattern::Strided { stride: 7 },
            AddressPattern::HotSpot { window: 16 },
        ] {
            let mut w = Workload::new(pattern, 100, 8, 0.5, 1);
            for _ in 0..500 {
                let op = w.next_op();
                assert!(op.addr() < 100, "{pattern:?}: {op:?}");
                if let Op::Write(_, v) = op {
                    assert!(v < 256);
                }
            }
        }
    }

    #[test]
    fn sequential_wraps() {
        let mut w = Workload::new(AddressPattern::Sequential, 4, 8, 0.0, 0);
        let addrs: Vec<u64> = (0..8).map(|_| w.next_op().addr()).collect();
        assert_eq!(addrs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn hotspot_confined_to_window() {
        let mut w = Workload::new(AddressPattern::HotSpot { window: 4 }, 1024, 8, 0.0, 7);
        for _ in 0..1000 {
            assert!(w.next_op().addr() < 4);
        }
    }

    #[test]
    fn write_fraction_zero_means_reads_only() {
        let mut w = Workload::new(AddressPattern::UniformRandom, 64, 8, 0.0, 3);
        for _ in 0..200 {
            assert!(matches!(w.next_op(), Op::Read(_)));
        }
    }

    #[test]
    fn uniform_covers_address_space() {
        let mut w = Workload::uniform(16, 8, 9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(w.next_op().addr());
        }
        assert_eq!(seen.len(), 16, "uniform stream should reach every word");
    }
}
