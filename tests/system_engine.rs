//! Integration contract of the multi-bank system layer, mirroring
//! `tests/campaign_engine.rs` and `tests/explore_engine.rs`: whatever the
//! thread count, a system campaign returns **bit-identical** results, and
//! the system-level metrics respond to the schedules the way the
//! Aupy-style model predicts.

use scm_area::RamOrganization;
use scm_codes::{CodewordMap, MOutOfN};
use scm_memory::campaign::CampaignConfig;
use scm_memory::design::RamConfig;
use scm_memory::workload::{model_by_name, Workload};
use scm_system::{Interleaving, MemorySystem, SystemCampaign, SystemConfig};

fn bank(words: u64, word_bits: u32) -> RamConfig {
    let org = RamOrganization::new(words, word_bits, 4);
    let code = MOutOfN::new(3, 5).unwrap();
    RamConfig::new(
        org,
        CodewordMap::mod_a(code, 9, org.rows()).unwrap(),
        CodewordMap::mod_a(code, 9, 4).unwrap(),
    )
}

fn heterogeneous() -> SystemConfig {
    SystemConfig {
        banks: vec![bank(256, 16), bank(128, 8), bank(64, 8), bank(64, 8)],
        interleaving: Interleaving::LowOrder,
        scrub: scm_system::ScrubSchedule { period: 4 },
        checkpoint: scm_system::CheckpointSchedule { interval: 32 },
    }
}

fn campaign() -> CampaignConfig {
    CampaignConfig {
        cycles: 160,
        trials: 5,
        seed: 0xD15C,
        write_fraction: 0.1,
    }
}

#[test]
fn system_campaign_is_bit_identical_at_every_thread_count() {
    for workload in ["uniform", "hotspot", "sequential"] {
        let engine = SystemCampaign::new(heterogeneous(), campaign())
            .workload_model(model_by_name(workload).unwrap());
        let universe = engine.decoder_universe(8);
        let reference = engine.clone().threads(1).run(&universe);
        for threads in [2usize, 4, 8] {
            let result = engine.clone().threads(threads).run(&universe);
            assert_eq!(
                reference.determinism_profile(),
                result.determinism_profile(),
                "{workload} at {threads} threads"
            );
        }
        assert!(
            reference.per_fault.iter().any(|f| f.detected > 0),
            "{workload}: the campaign must detect something"
        );
    }
}

#[test]
fn fault_free_system_is_silent_under_schedules() {
    // The engine's single-faulted-bank optimisation rests on this: a
    // fault-free bank never flags, so skipping its steps is unobservable.
    let config = heterogeneous();
    let traffic = Workload::uniform(config.total_words(), config.max_word_bits(), 3);
    let mut system = MemorySystem::new(config, campaign().seed);
    let summary = system.serve(traffic, 1_000);
    assert_eq!(summary.indications, 0);
    assert_eq!(summary.scrub_ops, 250);
}

#[test]
fn scrubbing_rescues_detection_under_a_starving_workload() {
    // High-order interleaving + a zipf hotspot leaves the last bank
    // almost untouched by traffic; the scrubber's periodic sweep is then
    // the only detection path, so switching it on must raise coverage.
    let mk = |period: u64| {
        let config = SystemConfig {
            banks: vec![bank(64, 8), bank(64, 8), bank(64, 8), bank(64, 8)],
            interleaving: Interleaving::HighOrder,
            scrub: scm_system::ScrubSchedule { period },
            checkpoint: scm_system::CheckpointSchedule { interval: 64 },
        };
        let engine = SystemCampaign::new(
            config,
            CampaignConfig {
                cycles: 800,
                trials: 4,
                seed: 0xFA11,
                write_fraction: 0.1,
            },
        )
        .workload_model(model_by_name("hotspot").unwrap());
        let universe: Vec<_> = engine
            .decoder_universe(8)
            .into_iter()
            .filter(|f| f.bank == 3)
            .collect();
        engine.run(&universe)
    };
    let unscrubbed = mk(0);
    let scrubbed = mk(4);
    assert!(
        scrubbed.detected_fraction() > unscrubbed.detected_fraction(),
        "scrub {} vs none {}",
        scrubbed.detected_fraction(),
        unscrubbed.detected_fraction()
    );
}

#[test]
fn lost_work_shrinks_with_checkpoint_interval_and_censoring_with_horizon() {
    let run = |interval: u64, cycles: u64| {
        let mut config = heterogeneous();
        config.checkpoint = scm_system::CheckpointSchedule { interval };
        let engine = SystemCampaign::new(
            config,
            CampaignConfig {
                cycles,
                ..campaign()
            },
        );
        let universe = engine.decoder_universe(6);
        engine.run(&universe)
    };
    let tight = run(8, 160).expected_lost_work();
    let sparse = run(128, 160).expected_lost_work();
    assert!(
        tight <= sparse,
        "interval 8: {tight}, interval 128: {sparse}"
    );
    // Undetected trials are censored at the full horizon; a longer
    // horizon converts censored trials into detections, so coverage must
    // not drop as the horizon stretches.
    let short = run(32, 120);
    let long = run(32, 480);
    assert!(
        long.detected_fraction() >= short.detected_fraction(),
        "coverage: {} vs {}",
        short.detected_fraction(),
        long.detected_fraction()
    );
}

#[test]
fn interleaving_policies_route_identical_traffic_differently() {
    let mut low = heterogeneous();
    low.interleaving = Interleaving::LowOrder;
    let mut high = heterogeneous();
    high.interleaving = Interleaving::HighOrder;
    let engine_low = SystemCampaign::new(low, campaign());
    let engine_high = SystemCampaign::new(high, campaign());
    let universe = engine_low.decoder_universe(6);
    let a = engine_low.run(&universe);
    let b = engine_high.run(&universe);
    assert_ne!(
        a.determinism_profile(),
        b.determinism_profile(),
        "interleaving must be observable in the campaign"
    );
}
