//! Exact per-fault escape probabilities.
//!
//! A stuck-at-1 on the line decoding value `m1` of a block that decodes `i`
//! address bits at offset `j` escapes detection on a cycle iff the applied
//! field value `m2` maps to the same codeword as `m1`. With the `B = A mod
//! a` mapping that means `(m2 − m1)·2^j ≡ 0 (mod a)`, i.e. `m2 ≡ m1 (mod
//! a/gcd(2^j, a))`. Counting those `m2 ∈ [0, 2^i)` *exactly* — rather than
//! the paper's `⌈2^i/a⌉` worst case — yields the full latency distribution,
//! and makes the `gcd` degradation for even `a` (the reason the paper
//! requires odd `a`) quantitative.

use scm_codes::mapping::MappingKind;
use scm_decoder::DecoderFaultSite;

/// Number of field values `m2 ∈ [0, 2^bits)` that map to the same codeword
/// as `m1` (including `m1` itself) for a block at bit offset `offset`.
///
/// # Panics
/// Panics if `m1 >= 2^bits`, `bits == 0`… `bits = 0` is impossible for real
/// blocks; `bits ≤ 63` is required.
pub fn collision_count(kind: MappingKind, bits: u32, offset: u32, m1: u64) -> u64 {
    assert!(
        (1..=63).contains(&bits),
        "block bit count {bits} out of range"
    );
    let span = 1u64 << bits;
    assert!(m1 < span, "m1 = {m1} outside the block's {span} values");
    match kind {
        MappingKind::ModA { a } => {
            // gcd(2^offset, a) = 2^min(offset, trailing_zeros(a)).
            let g_log = offset.min(a.trailing_zeros());
            let d = a >> g_log;
            if d <= 1 {
                // Every value collides: detection impossible (even `a` at
                // offset ≥ its 2-adic valuation — the paper's catastrophe).
                return span;
            }
            // Count m2 ≡ m1 (mod d) within [0, span).
            (span - 1 - m1 % d) / d + 1
        }
        MappingKind::InputParity => {
            // Same parity class: half the field values (all of them for a
            // 1-bit block, where only m2 = m1 matches).
            if bits == 1 {
                1
            } else {
                span / 2
            }
        }
        MappingKind::Berger => 1, // unique codeword per address
    }
}

/// Exact escape analysis for one decoder fault site under a mapping.
///
/// Two views coexist in the paper and both are computed here:
///
/// * **unconditional** (`sa1_per_cycle_escape`): probability a uniformly
///   random cycle does *not* detect the fault — error-free cycles count as
///   non-detecting. This is the `⌈2^i/a⌉ / 2^i` quantity whose worst block
///   the paper's `Pndc` bound uses. For tiny blocks it is dominated by
///   cycles producing no error at all (e.g. `1/2` for a 1-bit block).
/// * **error-conditional** (`sa1_escape_per_error_cycle`): probability an
///   *erroneous* cycle goes undetected. This is the fault-secure view under
///   which the paper's "blocks with `2^i ≤ a` have zero detection latency"
///   claim holds, and it is bounded above by the unconditional view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteEscape {
    /// Field values colliding with the stuck line (incl. itself).
    pub collisions: u64,
    /// Total field values, `2^bits`.
    pub span: u64,
    /// Unconditional per-cycle non-detection probability,
    /// `collisions / 2^bits`.
    pub sa1_per_cycle_escape: f64,
    /// Error-conditional per-cycle escape,
    /// `(collisions − 1) / (2^bits − 1)`.
    pub sa1_escape_per_error_cycle: f64,
    /// Per-cycle probability that an undetected *error* occurs,
    /// `(collisions − 1) / 2^bits`.
    pub sa1_undetected_error_per_cycle: f64,
    /// Per-cycle probability a stuck-at-0 on the same line is not detected
    /// (it is detected exactly on the cycles selecting the stuck line).
    pub sa0_per_cycle_escape: f64,
}

impl SiteEscape {
    /// Analyse one site under a mapping.
    pub fn of(site: &DecoderFaultSite, kind: MappingKind) -> SiteEscape {
        let collisions = collision_count(kind, site.bits, site.offset, site.value);
        let span = 1u64 << site.bits;
        SiteEscape {
            collisions,
            span,
            sa1_per_cycle_escape: collisions as f64 / span as f64,
            sa1_escape_per_error_cycle: (collisions - 1) as f64 / (span - 1) as f64,
            sa1_undetected_error_per_cycle: (collisions - 1) as f64 / span as f64,
            sa0_per_cycle_escape: (span - 1) as f64 / span as f64,
        }
    }

    /// `Pndc` for the stuck-at-1 after `c` uniform random cycles.
    pub fn sa1_escape_after(&self, cycles: u32) -> f64 {
        self.sa1_per_cycle_escape.powi(cycles as i32)
    }

    /// `Pndc` for the stuck-at-0 after `c` cycles.
    pub fn sa0_escape_after(&self, cycles: u32) -> f64 {
        self.sa0_per_cycle_escape.powi(cycles as i32)
    }

    /// Whether every *error* this stuck-at-1 produces is detected on the
    /// same cycle (zero detection latency in the fault-secure sense).
    pub fn sa1_zero_latency(&self) -> bool {
        self.collisions == 1
    }

    /// Expected number of cycles until detection of the stuck-at-1
    /// (geometric; `f64::INFINITY` if undetectable).
    pub fn sa1_expected_cycles(&self) -> f64 {
        let p_detect = 1.0 - self.sa1_per_cycle_escape;
        if p_detect <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / p_detect
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn collision_count_matches_paper_worst_case_for_odd_a() {
        // For odd a and any offset: worst m1 collides ⌈2^i/a⌉ times.
        for a in [3u64, 5, 9, 35, 125] {
            for bits in 1..=12u32 {
                for offset in [0u32, 1, 3, 7] {
                    let span = 1u64 << bits;
                    let worst = (0..span.min(4096))
                        .map(|m1| collision_count(MappingKind::ModA { a }, bits, offset, m1))
                        .max()
                        .unwrap();
                    assert_eq!(worst, span.div_ceil(a), "a={a} bits={bits} offset={offset}");
                }
            }
        }
    }

    #[test]
    fn even_a_collapses_at_high_offsets() {
        // a = 8: for offsets ≥ 3 every field value collides — detection is
        // impossible. This is the paper's argument for odd a.
        for offset in 3..8u32 {
            assert_eq!(
                collision_count(MappingKind::ModA { a: 8 }, 4, offset, 5),
                16
            );
        }
        // At offset 0 the mapping still works.
        assert_eq!(collision_count(MappingKind::ModA { a: 8 }, 4, 0, 5), 2);
        // Intermediate offsets degrade by the gcd factor f = 2^offset.
        assert_eq!(collision_count(MappingKind::ModA { a: 8 }, 4, 1, 1), 4); // d = 4
        assert_eq!(collision_count(MappingKind::ModA { a: 8 }, 4, 2, 1), 8); // d = 2
    }

    #[test]
    fn collision_count_brute_force_cross_check() {
        // Exact count must equal brute-force enumeration of colliding m2.
        for a in [3u64, 5, 6, 9, 10, 35] {
            for bits in 1..=8u32 {
                for offset in 0..=4u32 {
                    let span = 1u64 << bits;
                    for m1 in 0..span {
                        let brute = (0..span)
                            .filter(|&m2| {
                                let x1 = (m1 << offset) % a;
                                let x2 = (m2 << offset) % a;
                                x1 == x2
                            })
                            .count() as u64;
                        let fast = collision_count(MappingKind::ModA { a }, bits, offset, m1);
                        assert_eq!(fast, brute, "a={a} bits={bits} offset={offset} m1={m1}");
                    }
                }
            }
        }
    }

    #[test]
    fn parity_mapping_collisions() {
        assert_eq!(collision_count(MappingKind::InputParity, 1, 0, 0), 1);
        assert_eq!(collision_count(MappingKind::InputParity, 1, 5, 1), 1);
        assert_eq!(collision_count(MappingKind::InputParity, 4, 2, 7), 8);
        assert_eq!(collision_count(MappingKind::InputParity, 6, 0, 0), 32);
    }

    #[test]
    fn berger_mapping_always_unique() {
        for bits in 1..=10u32 {
            assert_eq!(collision_count(MappingKind::Berger, bits, 3, 0), 1);
        }
    }

    #[test]
    fn site_escape_quantities() {
        use scm_decoder::BlockId;
        use scm_logic::SignalId;
        let site = DecoderFaultSite {
            signal: SignalId::from_index(0),
            block: BlockId(0),
            bits: 4,
            offset: 0,
            value: 0,
        };
        // a = 9 over a 4-bit block: value 0 collides with 9 → 2 collisions.
        let e = SiteEscape::of(&site, MappingKind::ModA { a: 9 });
        assert_eq!(e.collisions, 2);
        assert_eq!(e.span, 16);
        assert!((e.sa1_per_cycle_escape - 2.0 / 16.0).abs() < 1e-12);
        assert!((e.sa1_undetected_error_per_cycle - 1.0 / 16.0).abs() < 1e-12);
        assert!(!e.sa1_zero_latency());
        // Pndc after 10 cycles: (1/8)^10 — the paper's worked example bound.
        assert!((e.sa1_escape_after(10) - 8f64.powi(-10)).abs() < 1e-18);
        // Expected cycles: 1 / (1 − 1/8).
        assert!((e.sa1_expected_cycles() - 8.0 / 7.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_collision_classes_partition_the_span(
            a_seed in any::<u64>(),
            bits in 1u32..=12,
            offset in 0u32..=6,
        ) {
            // Summing collisions over one representative per residue class
            // must recover the whole span exactly — the counter partitions
            // the field values.
            let a = 3 + 2 * (a_seed % 500); // odd a in [3, 1001]
            let span = 1u64 << bits;
            let kind = MappingKind::ModA { a };
            let d = {
                let g_log = offset.min(a.trailing_zeros());
                (a >> g_log).max(1)
            };
            let mut total = 0u64;
            for class in 0..d.min(span) {
                total += collision_count(kind, bits, offset, class);
            }
            // Representatives 0..min(d, span) cover every class present in
            // the span exactly once.
            prop_assert_eq!(total, span, "a={} bits={} offset={}", a, bits, offset);
        }

        #[test]
        fn prop_escape_relations_hold(
            a_seed in any::<u64>(),
            bits in 1u32..=12,
            offset in 0u32..=6,
            m1_seed in any::<u64>(),
        ) {
            use scm_decoder::BlockId;
            use scm_logic::SignalId;
            let a = 3 + 2 * (a_seed % 500);
            let span = 1u64 << bits;
            let site = DecoderFaultSite {
                signal: SignalId::from_index(0),
                block: BlockId(0),
                bits,
                offset,
                value: m1_seed % span,
            };
            let e = SiteEscape::of(&site, MappingKind::ModA { a });
            // Conditional never exceeds unconditional.
            prop_assert!(e.sa1_escape_per_error_cycle <= e.sa1_per_cycle_escape + 1e-15);
            // Undetected-error rate = escape − P[no error].
            prop_assert!((e.sa1_undetected_error_per_cycle
                - (e.sa1_per_cycle_escape - 1.0 / span as f64)).abs() < 1e-12);
            // Everything is a probability.
            for p in [e.sa1_per_cycle_escape, e.sa1_escape_per_error_cycle,
                      e.sa1_undetected_error_per_cycle, e.sa0_per_cycle_escape] {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            // The paper's ceiling bound dominates the exact count.
            prop_assert!(e.collisions <= span.div_ceil((a >> offset.min(a.trailing_zeros())).max(1)));
        }
    }

    #[test]
    fn small_blocks_have_zero_latency() {
        use scm_decoder::BlockId;
        use scm_logic::SignalId;
        // 2^i ≤ a ⇒ no collisions ⇒ every error detected instantly.
        for bits in 1..=3u32 {
            for value in 0..(1u64 << bits) {
                let site = DecoderFaultSite {
                    signal: SignalId::from_index(0),
                    block: BlockId(0),
                    bits,
                    offset: 0,
                    value,
                };
                let e = SiteEscape::of(&site, MappingKind::ModA { a: 9 });
                assert!(e.sa1_zero_latency(), "bits={bits} value={value}");
                assert_eq!(e.sa1_undetected_error_per_cycle, 0.0);
            }
        }
    }
}
