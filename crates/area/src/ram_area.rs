//! RAM organization and base area.
//!
//! The memory of Figure 2: `2^p` rows by `m·2^s` physical columns, with a
//! `2^s`-to-1 column MUX in front of the `m`-bit data register (`n = p + s`
//! address bits). The base area is the cell array plus periphery
//! proportional to the array edges — row drivers on one side, column
//! circuitry (precharge, sense, MUX) on the other. That two-term model is
//! what makes the paper's three RAM sizes fit a single parameter set (see
//! DESIGN.md §6).

use crate::tech::TechnologyParams;

/// Physical organization of a RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RamOrganization {
    words: u64,
    word_bits: u32,
    mux_factor: u32,
}

impl RamOrganization {
    /// Create an organization.
    ///
    /// # Panics
    /// Panics unless `words` and `mux_factor` are powers of two,
    /// `mux_factor < words` (the row decoder needs at least one address
    /// bit), and `word_bits ≥ 1`.
    pub fn new(words: u64, word_bits: u32, mux_factor: u32) -> Self {
        assert!(words.is_power_of_two(), "word count must be a power of two");
        assert!(
            mux_factor.is_power_of_two(),
            "mux factor must be a power of two"
        );
        assert!(
            (mux_factor as u64) < words,
            "mux factor exceeds word count (need at least two rows)"
        );
        assert!(word_bits >= 1, "word width must be at least 1");
        RamOrganization {
            words,
            word_bits,
            mux_factor,
        }
    }

    /// The paper's style: 1-out-of-8 column multiplexing.
    pub fn with_mux8(words: u64, word_bits: u32) -> Self {
        Self::new(words, word_bits, 8)
    }

    /// Number of addressable words.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Word width `m` in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Column multiplexing factor `2^s`.
    pub fn mux_factor(&self) -> u32 {
        self.mux_factor
    }

    /// Physical columns of the cell array: `(m + 1) · 2^s` — every word
    /// bit plus the parity bit, each fanned over the column mux. The one
    /// formula every cell-coordinate universe (array construction, cell
    /// fault universes, SEU targeting) must agree on.
    pub fn physical_cols(&self) -> u32 {
        (self.word_bits + 1) * self.mux_factor
    }

    /// Column-decoder address bits `s`.
    pub fn col_bits(&self) -> u32 {
        self.mux_factor.trailing_zeros()
    }

    /// Row-decoder address bits `p = n − s`.
    pub fn row_bits(&self) -> u32 {
        self.address_bits() - self.col_bits()
    }

    /// Total address bits `n`.
    pub fn address_bits(&self) -> u32 {
        self.words.trailing_zeros()
    }

    /// Physical rows, `2^p`.
    pub fn rows(&self) -> u64 {
        1u64 << self.row_bits()
    }

    /// Physical columns, `m·2^s`.
    pub fn cols(&self) -> u64 {
        self.word_bits as u64 * self.mux_factor as u64
    }

    /// Storage capacity in bits.
    pub fn bits(&self) -> u64 {
        self.words * self.word_bits as u64
    }

    /// Short name like `16x2K`.
    pub fn name(&self) -> String {
        let words = if self.words.is_multiple_of(1024) {
            format!("{}K", self.words / 1024)
        } else {
            self.words.to_string()
        };
        format!("{}x{}", self.word_bits, words)
    }
}

/// Base RAM area breakdown (normalised RAM-cell units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RamArea {
    /// Cell-array area (= capacity in bits × cell area).
    pub cell_array: f64,
    /// Edge periphery (row drivers + column circuitry).
    pub periphery: f64,
}

impl RamArea {
    /// Total base area.
    pub fn total(&self) -> f64 {
        self.cell_array + self.periphery
    }
}

/// Compute the base area of an organization under a technology.
pub fn ram_area(org: RamOrganization, tech: &TechnologyParams) -> RamArea {
    RamArea {
        cell_array: org.bits() as f64 * tech.ram_cell_area,
        periphery: (org.rows() + org.cols()) as f64 * tech.periphery_per_line,
    }
}

/// The three embedded RAMs of the paper's evaluation, in table order:
/// 16×2K, 32×4K, 64×8K, all with 1-out-of-8 column multiplexing.
pub fn paper_rams() -> [RamOrganization; 3] {
    [
        RamOrganization::with_mux8(2048, 16),
        RamOrganization::with_mux8(4096, 32),
        RamOrganization::with_mux8(8192, 64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ram_organizations() {
        let [a, b, c] = paper_rams();
        assert_eq!((a.row_bits(), a.col_bits()), (8, 3));
        assert_eq!((a.rows(), a.cols()), (256, 128));
        assert_eq!((b.row_bits(), b.col_bits()), (9, 3));
        assert_eq!((b.rows(), b.cols()), (512, 256));
        assert_eq!((c.row_bits(), c.col_bits()), (10, 3));
        assert_eq!((c.rows(), c.cols()), (1024, 512));
        assert_eq!(a.bits(), 32768);
        assert_eq!(b.bits(), 131072);
        assert_eq!(c.bits(), 524288);
        assert_eq!(a.name(), "16x2K");
        assert_eq!(c.name(), "64x8K");
    }

    #[test]
    fn paper_example_1k16_organization() {
        // Section IV: 1K words × 16 bits, 1-out-of-8 mux → p = 7, s = 3.
        let org = RamOrganization::with_mux8(1024, 16);
        assert_eq!(org.row_bits(), 7);
        assert_eq!(org.col_bits(), 3);
        assert_eq!(org.address_bits(), 10);
        assert_eq!(org.rows(), 128);
        assert_eq!(org.cols(), 128); // square array
    }

    #[test]
    fn area_matches_calibration_anchor() {
        // 16×2K under the calibrated model: 32768 + 26.8·384 = 43059.2.
        let area = ram_area(paper_rams()[0], &TechnologyParams::default());
        assert!((area.total() - 43059.2).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_words_rejected() {
        let _ = RamOrganization::new(1000, 16, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn mux_larger_than_words_rejected() {
        let _ = RamOrganization::new(4, 16, 8);
    }
}
