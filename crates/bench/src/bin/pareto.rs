//! The paper's title trade-off as data: the **area vs detection latency
//! Pareto front**. Sweeps the latency budget and prints, for each point,
//! the selected code and the % hardware increase on the three paper RAMs —
//! CSV on stdout, ready for plotting.
//!
//! Run: `cargo run -p scm-bench --bin pareto [--policy inverse-a]`

use scm_area::tables::percents_for_width;
use scm_area::TechnologyParams;
use scm_codes::selection::{select_code, LatencyBudget, SelectionPolicy};

fn main() {
    let policy = match std::env::args().nth(2).as_deref() {
        Some("inverse-a") => SelectionPolicy::InverseA,
        _ => SelectionPolicy::WorstBlockExact,
    };
    let tech = TechnologyParams::default();

    println!("# area-vs-latency Pareto sweep, policy = {}", policy.name());
    println!("c,pndc,code,r,a,escape_per_cycle,pct_16x2K,pct_32x4K,pct_64x8K");
    let cs = [
        1u32, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 30, 40, 50, 64, 100,
    ];
    let pndcs = [1e-2, 1e-5, 1e-9, 1e-12, 1e-15, 1e-20, 1e-30];
    for &pndc in &pndcs {
        for &c in &cs {
            let Ok(budget) = LatencyBudget::new(c, pndc) else {
                continue;
            };
            let Ok(plan) = select_code(budget, policy) else {
                // Infeasible corner (e.g. c = 1, Pndc = 1e-30): skip.
                continue;
            };
            let p = percents_for_width(plan.r(), &tech);
            println!(
                "{c},{pndc:.0e},{},{},{},{:.6},{:.3},{:.3},{:.3}",
                plan.code_name(),
                plan.r(),
                plan.a(),
                plan.escape_per_cycle(),
                p[0],
                p[1],
                p[2]
            );
        }
    }
    eprintln!("# rows are the achievable (latency, area) points; the Pareto front");
    eprintln!("# is monotone: tighter budgets never select narrower codes.");
}
