//! Integration: the fleet driver's checkpoint/resume and thread
//! invariance, at the library level. (The real kill-and-restart test —
//! SIGKILL on the `scm` binary — lives in `scm-bench`'s test suite; this
//! file pins the underlying driver contract the CLI builds on.)

use scm_fleet::{FleetDriver, FleetOptions, FleetOutcome, FleetProgress, FleetSpec};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("scm-fleet-test-{}-{name}", std::process::id()));
    path
}

fn completed(progress: FleetProgress) -> FleetOutcome {
    match progress {
        FleetProgress::Completed(outcome) => outcome,
        FleetProgress::Halted { devices_done, .. } => panic!("halted at {devices_done}"),
    }
}

fn options(threads: usize, sliced: bool) -> FleetOptions {
    FleetOptions {
        seed: 0xF1EE7,
        threads,
        sliced,
        ..FleetOptions::default()
    }
}

#[test]
fn halt_and_resume_reproduces_the_uninterrupted_run_at_1_2_4_threads() {
    for sliced in [false, true] {
        let spec = FleetSpec::preset("small").unwrap();
        let reference = completed(
            FleetDriver::new(spec.clone(), options(1, sliced))
                .unwrap()
                .run()
                .unwrap(),
        );
        for threads in [1usize, 2, 4] {
            let path = tmp(&format!("resume-{sliced}-{threads}"));
            let mut opts = options(threads, sliced);
            opts.checkpoint = Some(path.clone());
            opts.checkpoint_every = 8;
            opts.halt_after = Some(8);
            let progress = FleetDriver::new(spec.clone(), opts.clone())
                .unwrap()
                .run()
                .unwrap();
            let FleetProgress::Halted {
                devices_done,
                checkpoint,
            } = progress
            else {
                panic!("expected a halt, fleet completed");
            };
            assert!(devices_done >= 8 && devices_done < spec.total_devices());
            assert!(checkpoint.exists(), "halt must leave a checkpoint behind");
            // Resume under a *different* thread count than the halt ran
            // with: the checkpoint carries no thread state.
            let mut resumed_opts = opts.clone();
            resumed_opts.threads = (threads % 4) + 1;
            resumed_opts.halt_after = None;
            let outcome = completed(
                FleetDriver::resume(spec.clone(), resumed_opts, &checkpoint)
                    .unwrap()
                    .run()
                    .unwrap(),
            );
            assert_eq!(
                outcome, reference,
                "sliced={sliced} threads={threads}: resumed run drifted"
            );
            assert!(
                !checkpoint.exists(),
                "completion must clean up the checkpoint"
            );
        }
    }
}

#[test]
fn periodic_checkpoints_appear_and_resume_from_any_of_them() {
    let spec = FleetSpec::preset("small").unwrap();
    let reference = completed(
        FleetDriver::new(spec.clone(), options(1, false))
            .unwrap()
            .run()
            .unwrap(),
    );
    // Halt later in the run: two checkpoint cadences already passed.
    let path = tmp("late-halt");
    let mut opts = options(1, false);
    opts.checkpoint = Some(path.clone());
    opts.checkpoint_every = 4;
    opts.halt_after = Some(12);
    let progress = FleetDriver::new(spec.clone(), opts.clone())
        .unwrap()
        .run()
        .unwrap();
    assert!(matches!(progress, FleetProgress::Halted { .. }));
    let mut resume_opts = opts;
    resume_opts.halt_after = None;
    let outcome = completed(
        FleetDriver::resume(spec, resume_opts, &path)
            .unwrap()
            .run()
            .unwrap(),
    );
    assert_eq!(outcome, reference);
}

#[test]
fn rendered_reports_are_identical_across_resume() {
    let spec = FleetSpec::preset("small").unwrap();
    let reference = completed(
        FleetDriver::new(spec.clone(), options(2, true))
            .unwrap()
            .run()
            .unwrap(),
    );
    let path = tmp("render");
    let mut opts = options(2, true);
    opts.checkpoint = Some(path.clone());
    opts.checkpoint_every = 8;
    opts.halt_after = Some(8);
    assert!(matches!(
        FleetDriver::new(spec.clone(), opts.clone()).unwrap().run(),
        Ok(FleetProgress::Halted { .. })
    ));
    let mut resume_opts = opts;
    resume_opts.halt_after = None;
    let outcome = completed(
        FleetDriver::resume(spec, resume_opts, &path)
            .unwrap()
            .run()
            .unwrap(),
    );
    assert_eq!(
        scm_fleet::fleet_report(&reference),
        scm_fleet::fleet_report(&outcome)
    );
    assert_eq!(
        scm_fleet::fleet_json(&reference),
        scm_fleet::fleet_json(&outcome)
    );
}
