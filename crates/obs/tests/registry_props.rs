//! Property tests for the metrics registry and the trace codec.
//!
//! The registry's whole reason to exist is that aggregation commutes
//! with parallel decomposition: engines fold events per cell, merge in
//! canonical order, and the CLI re-aggregates saved traces. All of that
//! is sound only if `merge` is associative and commutative and
//! `from_events` is invariant under *any* grouping of the event stream.
//! These properties are exercised here over randomized event streams,
//! alongside lossless text round-tripping of the trace format itself.
//!
//! The vendored proptest shim has no `prop_oneof!`/`Just`, so the kind
//! strategy draws a selector plus a payload pool and maps them onto the
//! eleven `EventKind` variants.

use proptest::prelude::*;
use scm_obs::{parse_trace, trace_text, Event, EventKind, Histogram, Metrics, Verdict};

const VERDICTS: [Verdict; 5] = [
    Verdict::Silent,
    Verdict::Incomplete,
    Verdict::Clean,
    Verdict::Repaired,
    Verdict::Unrepairable,
];

fn arb_kind() -> impl Strategy<Value = EventKind> {
    (0u32..11, 0u64..10_000, 0u32..8, any::<bool>(), 0u64..32).prop_map(
        |(selector, big, small, flag, mid)| match selector {
            0 => EventKind::Activate,
            1 => EventKind::SeuStrike,
            2 => EventKind::Detect { latency: big },
            3 => EventKind::Escape,
            4 => EventKind::ScrubSweep { sweep: mid + 1 },
            5 => EventKind::CheckpointWrite { index: mid + 1 },
            6 => EventKind::CheckpointRestore { lost: big },
            7 => EventKind::BistStart {
                target: small,
                reactive: flag,
            },
            8 => EventKind::BistVerdict {
                verdict: VERDICTS[(mid % 5) as usize],
                ambiguity: mid,
            },
            9 => EventKind::SpareCommit { row: flag },
            _ => EventKind::RungPrune {
                generation: small,
                fidelity: small + 1,
                entered: mid as u32,
                evaluated: small,
                survivors: small.min(mid as u32),
                spent: big,
            },
        },
    )
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0u64..1_000_000, 0u32..8, 0u32..64, 0u32..32, arb_kind()).prop_map(
        |(t, bank, fault, trial, kind)| {
            // Grid-less kinds carry a zeroed scope by construction (the
            // renderer omits it), so the strategy mirrors the emitters.
            if matches!(kind, EventKind::RungPrune { .. }) {
                Event::global(t, kind)
            } else {
                Event::cell(t, bank, fault, trial, kind)
            }
        },
    )
}

fn events() -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec(arb_event(), 0..64)
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in events(), b in events(), c in events()
    ) {
        let (ma, mb, mc) = (
            Metrics::from_events(&a),
            Metrics::from_events(&b),
            Metrics::from_events(&c),
        );
        // (a ⊕ b) ⊕ c
        let mut left = ma.clone();
        left.merge(&mb);
        left.merge(&mc);
        // a ⊕ (b ⊕ c)
        let mut bc = mb.clone();
        bc.merge(&mc);
        let mut right = ma.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb.clone();
        ba.merge(&ma);
        prop_assert_eq!(&ab, &ba);
        // Rendering is a pure function of the registry value.
        prop_assert_eq!(left.render_table(), right.render_table());
        prop_assert_eq!(ab.render_json(), ba.render_json());
    }

    #[test]
    fn aggregation_is_invariant_under_any_grouping(
        stream in events(),
        cuts in proptest::collection::vec(any::<usize>(), 1..8)
    ) {
        let whole = Metrics::from_events(&stream);
        // Split the stream at arbitrary positions and fold the pieces.
        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(stream.len());
        boundaries.sort_unstable();
        let mut folded = Metrics::new();
        for pair in boundaries.windows(2) {
            folded.merge(&Metrics::from_events(&stream[pair[0]..pair[1]]));
        }
        prop_assert_eq!(&folded, &whole);
    }

    #[test]
    fn histogram_merge_equals_concatenated_observation(
        xs in proptest::collection::vec(0u64..100_000, 0..64),
        ys in proptest::collection::vec(0u64..100_000, 0..64)
    ) {
        let mut h_xs = Histogram::new();
        xs.iter().for_each(|&x| h_xs.observe(x));
        let mut h_ys = Histogram::new();
        ys.iter().for_each(|&y| h_ys.observe(y));
        let mut merged = h_xs.clone();
        merged.merge(&h_ys);
        let mut concat = Histogram::new();
        xs.iter().chain(&ys).for_each(|&v| concat.observe(v));
        prop_assert_eq!(&merged, &concat);
        prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        prop_assert_eq!(merged.sum(), xs.iter().chain(&ys).sum::<u64>());
        // Nearest-rank percentiles are exact: p100 is the max, p0 the min.
        let mut all: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(merged.percentile(100), all.last().copied());
        prop_assert_eq!(merged.min(), all.first().copied());
    }

    #[test]
    fn trace_text_round_trips_losslessly(stream in events()) {
        let text = trace_text("campaign", "cycles", &stream);
        let trace = parse_trace(&text).expect("rendered traces always parse");
        prop_assert_eq!(trace.cmd, "campaign");
        prop_assert_eq!(trace.clock, "cycles");
        prop_assert_eq!(trace.events, stream);
    }
}
