//! Quickstart: from a latency requirement to a running self-checking RAM.
//!
//! Builds the paper's Section III.2 worked example (detect decoder faults
//! within 10 cycles, escape probability ≤ 1e-9 → 3-out-of-5 code, a = 9),
//! exercises the memory, then injects decoder faults of both polarities and
//! shows the checkers catching them.
//!
//! Run: `cargo run --example quickstart`

use scm_core::prelude::*;
use scm_memory::decoder_unit::DecoderFault;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. State the requirement; the library picks the cheapest code.
    let design = SelfCheckingRamBuilder::new(1024, 16)
        .mux_factor(8)
        .latency_budget(10, 1e-9)?
        .build()?;
    println!("{}", design.report());

    // 2. Use it as a memory.
    let mut ram = design.instantiate();
    for addr in 0..1024u64 {
        ram.write(addr, addr.wrapping_mul(31) & 0xFFFF);
    }
    let out = ram.read(500);
    println!(
        "read @500 -> {:#06x}, checkers clean: {}",
        out.data,
        !out.verdict.any_error()
    );

    // 3. Stuck-at-0 in the row decoder: caught the moment it causes an
    //    error (the all-ones NOR word is never a codeword).
    let mut broken = ram.clone();
    broken.inject(FaultSite::RowDecoder(DecoderFault {
        bits: 7, // the last-level block decodes all 7 row bits
        offset: 0,
        value: 3, // the line for row 3 is stuck low
        stuck_one: false,
    }));
    let out = broken.read(3 * 8); // row 3, column 0
    println!(
        "SA0 on row line 3: row-checker error = {} (zero detection latency)",
        out.verdict.row_code_error
    );

    // 4. Stuck-at-1: two word lines fire; caught whenever their codewords
    //    differ — which the mod-9 mapping makes overwhelmingly likely.
    let mut broken = ram.clone();
    broken.inject(FaultSite::RowDecoder(DecoderFault {
        bits: 7,
        offset: 0,
        value: 3,
        stuck_one: true,
    }));
    let mut detected = 0;
    for row in 0..128u64 {
        if broken.read(row * 8).verdict.row_code_error {
            detected += 1;
        }
    }
    println!("SA1 on row line 3: flagged on {detected}/128 row addresses");

    // 5. A single stuck cell: the classical parity catch.
    let mut broken = ram.clone();
    broken.inject(FaultSite::Cell {
        row: 10,
        col: 0,
        stuck: true,
    });
    let hit = (0..1024u64)
        .map(|a| broken.read(a))
        .filter(|o| o.verdict.parity_error)
        .count();
    println!("stuck cell: parity checker flags {hit} affected word(s)");

    Ok(())
}
