//! Area cost of the diagnosis/repair additions: spare rows, spare
//! columns and the March-BIST controller.
//!
//! The paper's trade-off stops at detection; the `scm-diag` layer re-opens
//! it on the cost side. A spare row is one extra physical row of
//! `(m+1)·2^s` cells plus one line of edge periphery (its driver and the
//! programmable address-match that steers repaired addresses onto it); a
//! spare column is `2^p` cells plus one line of column periphery. The BIST
//! controller is random logic priced in gate equivalents from its
//! structural inventory:
//!
//! * an `n`-bit up/down address counter (~6 GE per bit: flip-flop plus
//!   increment/decrement mux),
//! * an `(m+1)`-bit background/expected-data register (~8 GE per bit:
//!   flip-flop plus invert/select mux for the `w0`/`w1`/`r0`/`r1` data),
//! * the read comparator — an `(m+1)`-wide XOR rake folded by an OR tree
//!   (~2 GE per bit),
//! * the March sequencer FSM (~12 GE per March operation across all
//!   elements: state register share, op decode, order control).
//!
//! These are engineering estimates in the same normalised units as
//! [`crate::overhead`]; they make repaired designs land on the same
//! area axis as everything else rather than claiming layout accuracy.

use crate::ram_area::RamOrganization;
use crate::tech::TechnologyParams;

/// Gate-equivalent estimate of a March BIST controller for a RAM with
/// `address_bits` address lines and `data_bits`-wide words (+1 parity),
/// running a test of `march_ops` operations per word.
pub fn bist_controller_gate_equivalents(address_bits: u32, data_bits: u32, march_ops: u32) -> f64 {
    let counter = 6.0 * address_bits as f64;
    let background = 8.0 * (data_bits + 1) as f64;
    let comparator = 2.0 * (data_bits + 1) as f64;
    let sequencer = 12.0 * march_ops as f64;
    counter + background + comparator + sequencer
}

/// Additive area of the repair additions (normalised RAM-cell units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairOverheadBreakdown {
    /// Base RAM area the percentages are against (cell array + periphery).
    pub ram: f64,
    /// Spare-row storage + per-row periphery/match logic.
    pub spare_rows: f64,
    /// Spare-column storage + per-column periphery/steering.
    pub spare_cols: f64,
    /// March-BIST controller random logic.
    pub bist_controller: f64,
}

impl RepairOverheadBreakdown {
    /// Spare storage (rows + columns) as a percentage of the base RAM.
    pub fn spare_percent(&self) -> f64 {
        100.0 * (self.spare_rows + self.spare_cols) / self.ram
    }

    /// BIST controller as a percentage of the base RAM.
    pub fn bist_percent(&self) -> f64 {
        100.0 * self.bist_controller / self.ram
    }

    /// Everything the repair layer adds, as a percentage of the base RAM.
    pub fn total_percent(&self) -> f64 {
        100.0 * (self.spare_rows + self.spare_cols + self.bist_controller) / self.ram
    }
}

/// Price the repair additions for a RAM: `spare_rows`/`spare_cols` spares
/// and a BIST controller for a March test of `march_ops` operations per
/// word (`0` = no BIST hardware, diagnosis off).
pub fn repair_overhead(
    org: RamOrganization,
    spare_rows: u32,
    spare_cols: u32,
    march_ops: u32,
    tech: &TechnologyParams,
) -> RepairOverheadBreakdown {
    let base = crate::ram_area::ram_area(org, tech);
    let row_cells = (org.word_bits() + 1) as f64 * org.mux_factor() as f64;
    let spare_row_area = row_cells * tech.ram_cell_area + tech.periphery_per_line;
    let spare_col_area = org.rows() as f64 * tech.ram_cell_area + tech.periphery_per_line;
    let bist = if march_ops == 0 {
        0.0
    } else {
        tech.gate_equivalent_area
            * bist_controller_gate_equivalents(org.address_bits(), org.word_bits(), march_ops)
    };
    RepairOverheadBreakdown {
        ram: base.total(),
        spare_rows: spare_rows as f64 * spare_row_area,
        spare_cols: spare_cols as f64 * spare_col_area,
        bist_controller: bist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spare_rows_scale_linearly_and_cover_the_parity_group() {
        let tech = TechnologyParams::default();
        let org = RamOrganization::new(1024, 16, 8);
        let one = repair_overhead(org, 1, 0, 0, &tech);
        let four = repair_overhead(org, 4, 0, 0, &tech);
        assert!((four.spare_rows - 4.0 * one.spare_rows).abs() < 1e-9);
        // One spare row stores (m+1)·mux = 17·8 cells plus a periphery line.
        assert!((one.spare_rows - (17.0 * 8.0 + 26.8)).abs() < 1e-9);
        assert_eq!(one.bist_controller, 0.0, "no march ops, no controller");
    }

    #[test]
    fn repair_overhead_is_small_against_the_paper_headline() {
        // The economic argument for repair: two spare rows plus a March C−
        // controller on the 1K×16 worked example cost far less than the
        // detection ROMs themselves (~25 % headline).
        let tech = TechnologyParams::default();
        let org = RamOrganization::with_mux8(1024, 16);
        let b = repair_overhead(org, 2, 1, 10, &tech);
        assert!(b.total_percent() > 0.0);
        assert!(b.total_percent() < 10.0, "got {}", b.total_percent());
        assert!(b.spare_percent() > 0.0 && b.bist_percent() > 0.0);
    }

    #[test]
    fn bist_controller_grows_with_test_complexity() {
        let mats = bist_controller_gate_equivalents(10, 16, 5);
        let march_c = bist_controller_gate_equivalents(10, 16, 10);
        let march_b = bist_controller_gate_equivalents(10, 16, 17);
        assert!(mats < march_c && march_c < march_b);
        // Structural floor: counter + registers exist even for a 1-op test.
        assert!(bist_controller_gate_equivalents(6, 8, 1) > 6.0 * 6.0);
    }
}
