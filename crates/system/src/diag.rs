//! BIST diagnosis and repair scheduled on the system clock.
//!
//! A [`DiagPolicy`] puts the `scm-diag` machinery into the sharded
//! runtime: March sessions run **on the global clock**, stealing
//! consecutive mission cycles the way scrub reads steal their slots —
//! except a session is a long interruption, not one read, so the
//! diagnosis latency the paper's trade-off must absorb is directly
//! visible. Two triggers:
//!
//! * **reactive** — the repair interrupt: the first cycle a bank's
//!   checker flags during mission service, a diagnosing session on that
//!   bank starts on the next cycle (per-bank checkers identify the bank);
//! * **proactive** — every `period` cycles a session tests the next bank
//!   round-robin (`0` = reactive only), bounding the latency of faults
//!   mission traffic never tickles.
//!
//! Sessions are destructive (March overwrites the bank), so after each
//! one the bank rolls back to its recovery image — the checkpoint-restore
//! whose cost shows up in the Aupy-style lost-work account. When a
//! session's signature localizes the fault and the spare budget covers
//! the ambiguity set, the bank is *repaired*: the engine swaps in the
//! [`RepairedRam`] (recovered from the same image) and mission service
//! continues on it; any post-repair erroneous output or indication is
//! counted — zero is the acceptance bar.
//!
//! Determinism mirrors [`crate::engine::SystemCampaign`] exactly: trial
//! traffic seeds are pure in `(seed, bank, per-bank fault index, trial)`,
//! the March background is pinned by the policy (sessions must replay
//! the dictionary's background for signatures to align), and per-fault
//! statistics are commutative sums — **bit-identical at every thread
//! count**.
//!
//! Dictionary scope: the engine files only the *campaigned* candidates
//! of each bank, so diagnosing distinguishes among the hypotheses the
//! campaign actually injects (ambiguity sets are lower bounds).
//! Full-universe dictionaries — and their honest parity-background blind
//! spot — live in the single-memory layer (`scm_diag::dictionary`).

use crate::clock::SystemClock;
use crate::engine::SystemFault;
use crate::system::{bank_prefill_seed, seed_mix, MemorySystem, SystemConfig};
use rayon::prelude::*;
use scm_diag::dictionary::FaultDictionary;
use scm_diag::march::{MarchSession, MarchTest};
use scm_diag::repair::{RepairOutcome, RepairedRam, SpareAllocator, SpareBudget};
use scm_memory::backend::{BehavioralBackend, FaultSimBackend};
use scm_memory::campaign::CampaignConfig;
use scm_memory::fault::FaultSite;
use scm_memory::workload::{Op, UniformRandom, WorkloadModel};
use scm_obs::{sort_chronological, Event, EventKind, NullSink, TraceSink, VecSink, Verdict};
use std::sync::Arc;

/// How the system schedules BIST diagnosis and what it may repair with.
#[derive(Debug, Clone)]
pub struct DiagPolicy {
    /// Proactive session period in system cycles (`0` = reactive only:
    /// sessions fire solely on checker indications).
    pub period: u64,
    /// The March test sessions run.
    pub test: MarchTest,
    /// Session seed: fixes the data background of every session *and*
    /// the dictionaries, so observed signatures match filed ones.
    pub session_seed: u64,
    /// Per-bank spare budget available to each trial.
    pub budget: SpareBudget,
}

impl DiagPolicy {
    /// Reactive-only policy: diagnose on the first indication, using the
    /// given March test and spare budget.
    pub fn reactive(test: MarchTest, budget: SpareBudget) -> Self {
        DiagPolicy {
            period: 0,
            test,
            session_seed: 0xD1A6,
            budget,
        }
    }

    /// Add proactive sessions every `period` cycles.
    pub fn proactive(mut self, period: u64) -> Self {
        self.period = period;
        self
    }
}

/// Aggregated trial counters for one system fault under diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagFaultResult {
    /// The campaign cell.
    pub fault: SystemFault,
    /// Trials run.
    pub trials: u32,
    /// Trials detected (mission checker or BIST syndrome) within the
    /// horizon.
    pub detected: u32,
    /// Sum of detection cycles (global clock) over detected trials.
    pub detection_cycle_sum: u64,
    /// Trials whose diagnosing session localized the fault (ambiguity
    /// set contains the true site).
    pub localized: u32,
    /// Sum of ambiguity-set sizes over localized trials.
    pub ambiguity_sum: u64,
    /// Trials repaired onto a spare.
    pub repaired: u32,
    /// Sum over repaired trials of `repair cycle − onset` (global
    /// cycles); onset is the first erroneous output, falling back to the
    /// detection cycle for faults that flag before erring.
    pub time_to_repair_sum: u64,
    /// Cycles stolen by BIST sessions, summed over trials.
    pub bist_cycle_sum: u64,
    /// Aupy-style lost work (detection-anchored, horizon-censored when
    /// undetected), summed over trials.
    pub lost_work_sum: u64,
    /// Post-repair erroneous outputs across all trials (acceptance: 0).
    pub post_repair_escapes: u32,
    /// Post-repair checker indications across all trials (acceptance: 0).
    pub post_repair_indications: u32,
}

impl DiagFaultResult {
    fn new(fault: SystemFault) -> Self {
        DiagFaultResult {
            fault,
            trials: 0,
            detected: 0,
            detection_cycle_sum: 0,
            localized: 0,
            ambiguity_sum: 0,
            repaired: 0,
            time_to_repair_sum: 0,
            bist_cycle_sum: 0,
            lost_work_sum: 0,
            post_repair_escapes: 0,
            post_repair_indications: 0,
        }
    }
}

/// Whole-campaign result under a diagnosis policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagSystemResult {
    /// Per-fault outcomes, universe order.
    pub per_fault: Vec<DiagFaultResult>,
    /// The campaign parameters (`cycles` is the per-trial horizon).
    pub campaign: CampaignConfig,
    /// The policy in force.
    pub policy_period: u64,
    /// Session length per bank, in cycles.
    pub session_cycles: Vec<u64>,
}

impl DiagSystemResult {
    /// Every per-fault counter, universe order — the determinism-contract
    /// observable.
    pub fn determinism_profile(&self) -> Vec<(usize, usize, FaultSite, Vec<u64>)> {
        self.per_fault
            .iter()
            .map(|f| {
                (
                    f.fault.bank,
                    f.fault.index,
                    f.fault.site,
                    vec![
                        f.trials as u64,
                        f.detected as u64,
                        f.detection_cycle_sum,
                        f.localized as u64,
                        f.ambiguity_sum,
                        f.repaired as u64,
                        f.time_to_repair_sum,
                        f.bist_cycle_sum,
                        f.lost_work_sum,
                        f.post_repair_escapes as u64,
                        f.post_repair_indications as u64,
                    ],
                )
            })
            .collect()
    }

    fn trials(&self) -> u64 {
        self.per_fault.iter().map(|f| f.trials as u64).sum()
    }

    /// Fraction of trials detected within the horizon.
    pub fn detected_fraction(&self) -> f64 {
        let trials = self.trials();
        if trials == 0 {
            return 0.0;
        }
        self.per_fault
            .iter()
            .map(|f| f.detected as u64)
            .sum::<u64>() as f64
            / trials as f64
    }

    /// Fraction of trials whose fault was localized.
    pub fn localized_fraction(&self) -> f64 {
        let trials = self.trials();
        if trials == 0 {
            return 0.0;
        }
        self.per_fault
            .iter()
            .map(|f| f.localized as u64)
            .sum::<u64>() as f64
            / trials as f64
    }

    /// Fraction of trials repaired back to service.
    pub fn repaired_fraction(&self) -> f64 {
        let trials = self.trials();
        if trials == 0 {
            return 0.0;
        }
        self.per_fault
            .iter()
            .map(|f| f.repaired as u64)
            .sum::<u64>() as f64
            / trials as f64
    }

    /// Mean time to repair over **all** trials, unrepaired trials
    /// censored at the full horizon — the scheduler-facing availability
    /// figure (and the repair-aware Pareto's latency axis).
    pub fn mean_time_to_repair(&self) -> f64 {
        let trials = self.trials();
        if trials == 0 {
            return 0.0;
        }
        let repaired: u64 = self.per_fault.iter().map(|f| f.repaired as u64).sum();
        let sum: u64 = self.per_fault.iter().map(|f| f.time_to_repair_sum).sum();
        let censored = (trials - repaired) * self.campaign.cycles;
        (sum + censored) as f64 / trials as f64
    }

    /// Mean fraction of the horizon stolen by BIST sessions.
    pub fn bist_overhead(&self) -> f64 {
        let trials = self.trials();
        if trials == 0 || self.campaign.cycles == 0 {
            return 0.0;
        }
        let stolen: u64 = self.per_fault.iter().map(|f| f.bist_cycle_sum).sum();
        stolen as f64 / (trials * self.campaign.cycles) as f64
    }

    /// Expected lost work per failure (Aupy-style, horizon-censored).
    pub fn expected_lost_work(&self) -> f64 {
        let trials = self.trials();
        if trials == 0 {
            return 0.0;
        }
        self.per_fault.iter().map(|f| f.lost_work_sum).sum::<u64>() as f64 / trials as f64
    }

    /// Total post-repair erroneous outputs (must be 0 for sound repairs).
    pub fn post_repair_escapes(&self) -> u32 {
        self.per_fault.iter().map(|f| f.post_repair_escapes).sum()
    }
}

/// The parallel diagnosis-campaign runner over a sharded system.
#[derive(Debug, Clone)]
pub struct DiagCampaign {
    system: SystemConfig,
    policy: DiagPolicy,
    campaign: CampaignConfig,
    model: Arc<dyn WorkloadModel>,
    threads: usize,
}

impl DiagCampaign {
    /// Campaign over `system` under `policy`, uniform traffic.
    pub fn new(system: SystemConfig, policy: DiagPolicy, campaign: CampaignConfig) -> Self {
        DiagCampaign {
            system,
            policy,
            campaign,
            model: Arc::new(UniformRandom),
            threads: 0,
        }
    }

    /// Plug in a shared traffic model.
    pub fn workload_model(mut self, model: Arc<dyn WorkloadModel>) -> Self {
        self.model = model;
        self
    }

    /// Pin the thread count (`0` = ambient rayon default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The system under campaign.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The diagnosis policy.
    pub fn policy(&self) -> &DiagPolicy {
        &self.policy
    }

    /// A deterministic mixed universe: exactly up to `max_cells_per_bank`
    /// stuck-cell faults (evenly strided over each bank's cell universe)
    /// plus up to `max_decoder_per_bank` row-decoder faults per bank.
    /// Unlike `SystemCampaign::decoder_universe`, a cap of `0` *excludes*
    /// that class (this builder mixes classes, so "everything" is spelled
    /// with an explicit large cap). Per-bank indices are the fault's
    /// seeding identity, shared across both classes.
    pub fn diag_universe(
        &self,
        max_cells_per_bank: usize,
        max_decoder_per_bank: usize,
    ) -> Vec<SystemFault> {
        let mut universe = Vec::new();
        for (bank, cfg) in self.system.banks.iter().enumerate() {
            let mut sites: Vec<FaultSite> = Vec::new();
            let cells = scm_diag::cell_universe(cfg);
            sites.extend(subsample(&cells, max_cells_per_bank));
            let decoders: Vec<FaultSite> =
                scm_memory::campaign::decoder_fault_universe(cfg.org().row_bits())
                    .into_iter()
                    .map(FaultSite::RowDecoder)
                    .collect();
            sites.extend(subsample(&decoders, max_decoder_per_bank));
            for (index, site) in sites.into_iter().enumerate() {
                universe.push(SystemFault::permanent(bank, index, site));
            }
        }
        universe
    }

    /// Per-bank dictionaries over exactly the campaigned candidates.
    fn dictionaries(&self, universe: &[SystemFault]) -> Vec<Option<FaultDictionary>> {
        (0..self.system.num_banks())
            .map(|bank| {
                let candidates: Vec<FaultSite> = universe
                    .iter()
                    .filter(|f| f.bank == bank)
                    .map(|f| f.site)
                    .collect();
                (!candidates.is_empty()).then(|| {
                    FaultDictionary::build(
                        &self.system.banks[bank],
                        &self.policy.test,
                        self.policy.session_seed,
                        &candidates,
                        // Ambient: dictionary builds ride the outer pool.
                        0,
                    )
                })
            })
            .collect()
    }

    /// Traffic seed for one grid cell — the system engine's pure-mix
    /// scheme, domain-separated from `SystemCampaign` by a tag so the
    /// two engines never share streams.
    fn trial_seed(&self, fault: SystemFault, trial: u32) -> u64 {
        seed_mix(
            self.campaign.seed ^ 0xD1A6_0000,
            &[fault.bank as u64, fault.index as u64, trial as u64],
        )
    }

    /// Run the `bank × fault × trial` grid under the diagnosis policy.
    ///
    /// # Panics
    /// Panics if a universe entry names a bank outside the system.
    pub fn run(&self, universe: &[SystemFault]) -> DiagSystemResult {
        self.validate(universe);
        let template = MemorySystem::new(self.system.clone(), self.campaign.seed);
        let dictionaries = self.dictionaries(universe);
        let dispatch = || -> Vec<DiagFaultResult> {
            universe
                .par_iter()
                .map(|&fault| self.run_fault_with(&template, &dictionaries, fault, &mut NullSink))
                .collect()
        };
        let per_fault = if self.threads == 0 {
            dispatch()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("thread pool construction is infallible")
                .install(dispatch)
        };
        DiagSystemResult {
            per_fault,
            campaign: self.campaign,
            policy_period: self.policy.period,
            session_cycles: self
                .system
                .banks
                .iter()
                .map(|b| self.policy.test.session_cycles(b.org().words()))
                .collect(),
        }
    }

    fn validate(&self, universe: &[SystemFault]) {
        if let Some(bad) = universe.iter().find(|f| f.bank >= self.system.num_banks()) {
            panic!(
                "fault targets bank {} of a {}-bank system",
                bad.bank,
                self.system.num_banks()
            );
        }
        // Diagnosis sessions roll banks back to the recovery image, which
        // restarts a backend's activation clock: the scheduler is only
        // sound for the classical injected-at-reset model. Transient
        // indications are triaged at the memory level instead
        // (`scm_diag::triage_session`'s repeat-and-compare policy).
        if let Some(bad) = universe
            .iter()
            .find(|f| f.process != scm_memory::fault::FaultProcess::PERMANENT)
        {
            panic!(
                "DiagCampaign schedules only permanent faults; got {}",
                bad.scenario()
            );
        }
    }

    /// Replay the grid as a structured event trace: fault activation,
    /// BIST session start/verdict, spare commit, detection, escape.
    ///
    /// The diagnosis scheduler is scalar-only and its trial loop is
    /// already pure in `(seed, bank, fault index, trial)`, so unlike
    /// the campaign engines the trace here taps the *same* state
    /// machine the results come from — through a [`TraceSink`] that
    /// monomorphises to a no-op on the result path ([`NullSink`]).
    /// Bit-identical at any thread count; the engine has no sliced or
    /// lane axis.
    ///
    /// # Panics
    /// Panics on out-of-range banks or non-permanent processes, exactly
    /// like [`run`](Self::run).
    pub fn trace(&self, universe: &[SystemFault]) -> Vec<Event> {
        self.validate(universe);
        let template = MemorySystem::new(self.system.clone(), self.campaign.seed);
        let dictionaries = self.dictionaries(universe);
        let trace_fault = |fault: SystemFault| -> Vec<Event> {
            let mut sink = VecSink::new();
            self.run_fault_with(&template, &dictionaries, fault, &mut sink);
            let mut events = sink.into_events();
            // Each trial's events are contiguous but Detect/Escape are
            // latched after the session events; restore chronology
            // within every trial range.
            let mut start = 0;
            for i in 1..=events.len() {
                if i == events.len() || events[i].trial != events[start].trial {
                    sort_chronological(&mut events[start..i]);
                    start = i;
                }
            }
            events
        };
        let dispatch = || -> Vec<Vec<Event>> {
            universe
                .par_iter()
                .map(|&fault| trace_fault(fault))
                .collect()
        };
        let per_fault: Vec<Vec<Event>> = if self.threads == 0 {
            dispatch()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("thread pool construction is infallible")
                .install(dispatch)
        };
        per_fault.into_iter().flatten().collect()
    }

    fn run_fault_with<K: TraceSink>(
        &self,
        template: &MemorySystem,
        dictionaries: &[Option<FaultDictionary>],
        fault: SystemFault,
        sink: &mut K,
    ) -> DiagFaultResult {
        let mut result = DiagFaultResult::new(fault);
        let spec = self.system.workload_spec(self.campaign.write_fraction);
        let plain_template: BehavioralBackend = template.banks()[fault.bank].clone();
        for trial in 0..self.campaign.trials {
            result.trials += 1;
            let traffic = self.model.stream(spec, self.trial_seed(fault, trial));
            let clock = SystemClock::new(self.system.interleaver(), self.system.scrub, traffic);
            let mut trial_run = TrialRun {
                engine: self,
                fault,
                trial,
                sink: &mut *sink,
                dictionary: dictionaries[fault.bank].as_ref(),
                plain: plain_template.clone(),
                repaired: None,
                allocator: SpareAllocator::new(self.policy.budget),
                clock,
                cycle: 0,
                onset: None,
                detected_at: None,
                localized: false,
                ambiguity: 0,
                repaired_at: None,
                abandoned: false,
                bist_cycles: 0,
                post_repair_escapes: 0,
                post_repair_indications: 0,
                rr_bank: 0,
            };
            trial_run.plain.reset_site(Some(fault.site));
            // The classical injected-at-reset model: active from cycle 0.
            trial_run.emit(0, EventKind::Activate);
            trial_run.run();
            if let Some(d) = trial_run.detected_at {
                let onset = trial_run.onset.unwrap_or(d).min(d);
                trial_run.emit(d, EventKind::Detect { latency: d - onset });
            }
            if let Some(e) = trial_run.onset {
                if trial_run.detected_at.is_none_or(|d| e < d) {
                    trial_run.emit(e, EventKind::Escape);
                }
            }
            let horizon = self.campaign.cycles;
            match trial_run.detected_at {
                Some(d) => {
                    result.detected += 1;
                    result.detection_cycle_sum += d;
                    // BIST can flag before mission traffic ever delivers
                    // an erroneous output; the rollback anchor is then
                    // the detection itself, never a later onset.
                    let onset = trial_run.onset.unwrap_or(d).min(d);
                    let rollback = self.system.checkpoint.last_checkpoint_at_or_before(onset);
                    result.lost_work_sum += d - rollback + 1;
                }
                None => result.lost_work_sum += horizon,
            }
            if trial_run.localized {
                result.localized += 1;
                result.ambiguity_sum += trial_run.ambiguity as u64;
            }
            if let Some(r) = trial_run.repaired_at {
                result.repaired += 1;
                let onset = trial_run
                    .onset
                    .or(trial_run.detected_at)
                    .unwrap_or(r)
                    .min(r);
                result.time_to_repair_sum += r - onset;
            }
            result.bist_cycle_sum += trial_run.bist_cycles;
            result.post_repair_escapes += trial_run.post_repair_escapes;
            result.post_repair_indications += trial_run.post_repair_indications;
        }
        result
    }
}

/// Deterministic even subsample; `cap = 0` yields the empty class.
fn subsample(universe: &[FaultSite], cap: usize) -> Vec<FaultSite> {
    if cap == 0 {
        return Vec::new();
    }
    if universe.len() <= cap {
        return universe.to_vec();
    }
    let stride = universe.len().div_ceil(cap);
    universe.iter().copied().step_by(stride).collect()
}

/// One trial's state machine.
struct TrialRun<'a, S: scm_memory::workload::OpSource, K: TraceSink> {
    engine: &'a DiagCampaign,
    fault: SystemFault,
    trial: u32,
    sink: &'a mut K,
    dictionary: Option<&'a FaultDictionary>,
    plain: BehavioralBackend,
    repaired: Option<RepairedRam>,
    allocator: SpareAllocator,
    clock: SystemClock<S>,
    cycle: u64,
    onset: Option<u64>,
    detected_at: Option<u64>,
    localized: bool,
    ambiguity: usize,
    repaired_at: Option<u64>,
    /// A diagnosis ran and could not repair; stop re-triggering.
    abandoned: bool,
    bist_cycles: u64,
    post_repair_escapes: u32,
    post_repair_indications: u32,
    rr_bank: usize,
}

impl<S: scm_memory::workload::OpSource, K: TraceSink> TrialRun<'_, S, K> {
    fn horizon(&self) -> u64 {
        self.engine.campaign.cycles
    }

    /// Record a trace event against this trial's grid cell. With the
    /// [`NullSink`] the guard is a constant `false` and the whole call
    /// compiles away.
    fn emit(&mut self, t: u64, kind: EventKind) {
        if self.sink.enabled() {
            self.sink.record(Event::cell(
                t,
                self.fault.bank as u32,
                self.fault.index as u32,
                self.trial,
                kind,
            ));
        }
    }

    fn emit_verdict(&mut self, verdict: Verdict, ambiguity: u64) {
        self.emit(self.cycle, EventKind::BistVerdict { verdict, ambiguity });
    }

    fn step_bank(&mut self, op: Op) -> scm_memory::backend::CycleObservation {
        match &mut self.repaired {
            Some(ram) => ram.step(op),
            None => self.plain.step(op),
        }
    }

    /// Roll the faulted bank back to its recovery image (destructive
    /// session or repair hand-over).
    fn rollback(&mut self) {
        let site = Some(self.fault.site);
        match &mut self.repaired {
            Some(ram) => ram.reset_site(site),
            None => self.plain.reset_site(site),
        }
    }

    fn run(&mut self) {
        let num_banks = self.engine.system.num_banks();
        let period = self.engine.policy.period;
        while self.cycle < self.horizon() {
            if period > 0 && (self.cycle + 1).is_multiple_of(period) {
                let bank = self.rr_bank % num_banks;
                self.rr_bank += 1;
                self.run_session(bank, false);
                continue;
            }
            let (bank, op) = self.clock.next_event().target();
            if bank != self.fault.bank {
                self.cycle += 1;
                continue; // fault-free banks are exactly silent
            }
            let obs = self.step_bank(op);
            let erroneous = obs.erroneous.unwrap_or(false);
            let detected = obs.detected();
            if self.repaired_at.is_some() {
                self.post_repair_escapes += erroneous as u32;
                self.post_repair_indications += detected as u32;
            } else if erroneous && self.onset.is_none() {
                self.onset = Some(self.cycle);
            }
            let flagged_pre_repair = detected && self.repaired_at.is_none();
            if flagged_pre_repair && self.detected_at.is_none() {
                self.detected_at = Some(self.cycle);
            }
            self.cycle += 1;
            // The repair interrupt: an indication triggers an immediate
            // session on the flagged bank (once — re-diagnosing a fault
            // the spares cannot cover would replay the same verdict).
            if flagged_pre_repair && !self.abandoned {
                self.run_session(self.fault.bank, true);
            }
        }
    }

    /// Run one March session on `bank`, stealing cycles from the global
    /// clock. Sessions on fault-free banks are silent and simply advance
    /// time (the single-fault soundness argument of the system engine).
    fn run_session(&mut self, bank: usize, reactive: bool) {
        let engine = self.engine;
        let test = &engine.policy.test;
        let words = engine.system.banks[bank].org().words();
        let word_bits = engine.system.banks[bank].org().word_bits();
        let session_len = test.session_cycles(words);
        self.emit(
            self.cycle,
            EventKind::BistStart {
                target: bank as u32,
                reactive,
            },
        );
        if bank != self.fault.bank {
            let consumed = session_len.min(self.horizon() - self.cycle);
            self.cycle += consumed;
            self.bist_cycles += consumed;
            self.emit_verdict(Verdict::Silent, 0);
            return;
        }
        // The shared incremental runner keeps syndrome recording (and
        // therefore signatures) identical to `run_march`'s; only the
        // global-clock accounting between ops lives here.
        let mut session = MarchSession::new(test, words, word_bits, engine.policy.session_seed);
        while self.cycle < self.horizon() {
            let Some(op) = session.next_op() else {
                break;
            };
            let obs = self.step_bank(op);
            let flagged = session.record(obs);
            if flagged && self.detected_at.is_none() && self.repaired_at.is_none() {
                self.detected_at = Some(self.cycle);
            }
            self.cycle += 1;
            self.bist_cycles += 1;
        }
        let complete = session.complete();
        let log = session.into_log();
        // Destructive session: restore the bank from the recovery image
        // before mission traffic resumes (the checkpoint-restore step).
        // A zero-length session (horizon hit before the first op) never
        // touched the bank, so there is nothing to restore.
        if log.cycles > 0 {
            self.rollback();
        }
        if !complete {
            self.emit_verdict(Verdict::Incomplete, 0);
            return;
        }
        if self.repaired_at.is_some() || self.abandoned {
            // The trial's diagnosis already settled; a later (proactive)
            // session just replays its log — classify by the log alone.
            let verdict = if log.clean() {
                Verdict::Clean
            } else {
                Verdict::Unrepairable
            };
            self.emit_verdict(verdict, 0);
            return;
        }
        let Some(dictionary) = self.dictionary else {
            let verdict = if log.clean() {
                Verdict::Clean
            } else {
                Verdict::Unrepairable
            };
            self.emit_verdict(verdict, 0);
            return;
        };
        if log.clean() {
            // A complete clean session proves this test is blind to the
            // fault (stuck-ats are time-invariant, backgrounds pinned):
            // re-running it on the next mission indication would replay
            // the same clean log, so stop the reactive trigger. Proactive
            // sessions keep firing — their bandwidth cost is real.
            self.abandoned = true;
            self.emit_verdict(Verdict::Clean, 0);
            return;
        }
        let diagnosis = dictionary.diagnose(&log);
        self.localized = diagnosis.contains(&self.fault.site);
        self.ambiguity = diagnosis.candidates.len();
        let config = &engine.system.banks[self.fault.bank];
        let outcome = self.allocator.allocate(config, &diagnosis);
        if outcome.repaired() {
            let mut ram = RepairedRam::prefilled(
                config,
                bank_prefill_seed(engine.campaign.seed, self.fault.bank),
                self.allocator.plan().clone(),
            );
            ram.reset_site(Some(self.fault.site));
            self.repaired = Some(ram);
            self.repaired_at = Some(self.cycle);
            self.emit_verdict(Verdict::Repaired, self.ambiguity as u64);
            self.emit(
                self.cycle,
                EventKind::SpareCommit {
                    row: matches!(outcome, RepairOutcome::RepairedRow { .. }),
                },
            );
        } else {
            self.abandoned = true;
            self.emit_verdict(Verdict::Unrepairable, self.ambiguity as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{CheckpointSchedule, ScrubSchedule};
    use crate::interleave::Interleaving;
    use scm_area::RamOrganization;
    use scm_codes::{CodewordMap, MOutOfN};
    use scm_memory::design::RamConfig;

    fn bank(words: u64) -> RamConfig {
        let org = RamOrganization::new(words, 8, 4);
        let code = MOutOfN::new(3, 5).unwrap();
        RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, org.rows()).unwrap(),
            CodewordMap::mod_a(code, 9, 4).unwrap(),
        )
    }

    fn config() -> SystemConfig {
        SystemConfig {
            banks: vec![bank(64), bank(64)],
            interleaving: Interleaving::LowOrder,
            scrub: ScrubSchedule { period: 4 },
            checkpoint: CheckpointSchedule { interval: 64 },
        }
    }

    fn policy() -> DiagPolicy {
        DiagPolicy::reactive(MarchTest::mats_plus(), SpareBudget { rows: 1, cols: 0 })
            .proactive(600)
    }

    fn campaign() -> CampaignConfig {
        CampaignConfig {
            cycles: 1600,
            trials: 3,
            seed: 0xD1,
            write_fraction: 0.1,
        }
    }

    #[test]
    fn universe_mixes_cells_and_decoders_per_bank() {
        let engine = DiagCampaign::new(config(), policy(), campaign());
        let universe = engine.diag_universe(4, 4);
        for bank in 0..2 {
            let sites: Vec<_> = universe.iter().filter(|f| f.bank == bank).collect();
            assert!(
                sites.iter().any(|f| f.site.class() == "cell"),
                "bank {bank}"
            );
            assert!(
                sites.iter().any(|f| f.site.class() == "row-decoder"),
                "bank {bank}"
            );
            // Indices are the per-bank identity, 0-based and contiguous.
            let mut indices: Vec<usize> = sites.iter().map(|f| f.index).collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..sites.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cell_fault_is_detected_localized_repaired_with_zero_post_repair_escapes() {
        let engine = DiagCampaign::new(config(), policy(), campaign());
        let universe = engine.diag_universe(6, 0);
        let result = engine.run(&universe);
        assert!(result.detected_fraction() > 0.5);
        assert!(result.repaired_fraction() > 0.5);
        assert_eq!(result.post_repair_escapes(), 0, "repairs must be sound");
        assert_eq!(
            result
                .per_fault
                .iter()
                .map(|f| f.post_repair_indications)
                .sum::<u32>(),
            0
        );
        assert!(result.mean_time_to_repair() > 0.0);
        assert!(result.bist_overhead() > 0.0);
        // Repaired trials must localize first.
        for f in &result.per_fault {
            assert!(f.repaired <= f.localized, "{:?}", f.fault);
        }
    }

    #[test]
    fn campaign_is_bit_identical_at_any_thread_count() {
        let engine = DiagCampaign::new(config(), policy(), campaign());
        let universe = engine.diag_universe(3, 3);
        let reference = engine.clone().threads(1).run(&universe);
        for threads in [2usize, 4, 8] {
            let result = engine.clone().threads(threads).run(&universe);
            assert_eq!(
                reference.determinism_profile(),
                result.determinism_profile(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn reactive_only_policy_still_repairs_mission_detected_faults() {
        let mut p = policy();
        p.period = 0;
        let engine = DiagCampaign::new(config(), p, campaign());
        let universe = engine.diag_universe(4, 0);
        let result = engine.run(&universe);
        // Mission reads of a corrupted word trip the parity checker; the
        // interrupt then walks detection through to repair. Cells whose
        // stuck value matches the stored image stay latent until a write
        // flips the stored bit, so reactive-only coverage is partial.
        assert!(
            result.repaired_fraction() > 0.3,
            "{}",
            result.repaired_fraction()
        );
        assert_eq!(result.post_repair_escapes(), 0);
    }

    #[test]
    fn proactive_sessions_bound_detection_for_mission_silent_faults() {
        // A stuck cell matching its stored value is mission-silent until
        // some write flips the stored bit; proactive BIST finds it within
        // one session regardless. Proactive coverage must dominate, at a
        // strictly higher bandwidth cost.
        let mk = |period: u64| {
            let mut p = policy();
            p.period = period;
            let engine = DiagCampaign::new(config(), p, campaign());
            let universe = engine.diag_universe(5, 0);
            engine.run(&universe)
        };
        let reactive = mk(0);
        let proactive = mk(400);
        assert!(
            proactive.detected_fraction() >= reactive.detected_fraction(),
            "proactive {} vs reactive {}",
            proactive.detected_fraction(),
            reactive.detected_fraction()
        );
        assert!(proactive.bist_overhead() > reactive.bist_overhead());
    }

    #[test]
    fn march_silent_fault_runs_at_most_one_reactive_session_per_trial() {
        // A parity-group cell stuck at the session background's parity
        // is March-silent but flags the mission parity checker whenever
        // a word of the other parity is stored. The first (clean,
        // complete) session must abandon further reactive triggers —
        // without that, every later indication would burn another full
        // destructive session.
        let policy = DiagPolicy::reactive(MarchTest::mats_plus(), SpareBudget { rows: 1, cols: 0 });
        let parity = scm_diag::background(policy.session_seed, 8).count_ones() % 2 == 1;
        let site = FaultSite::Cell {
            row: 3,
            col: 33, // parity column group (bit group 8), col-select 1
            stuck: parity,
        };
        let system = SystemConfig {
            banks: vec![bank(64)],
            interleaving: Interleaving::LowOrder,
            scrub: ScrubSchedule { period: 4 },
            checkpoint: CheckpointSchedule { interval: 64 },
        };
        let campaign = CampaignConfig {
            cycles: 1600,
            trials: 3,
            seed: 0xB11D,
            write_fraction: 0.2,
        };
        let session_len = policy.test.session_cycles(64);
        let engine = DiagCampaign::new(system, policy, campaign);
        let universe = vec![SystemFault::permanent(0, 0, site)];
        let result = engine.run(&universe);
        let f = &result.per_fault[0];
        assert!(f.detected > 0, "mission traffic must tickle the cell");
        assert_eq!(f.localized, 0, "the test is blind to this fault");
        assert_eq!(f.repaired, 0);
        assert!(
            f.bist_cycle_sum <= f.trials as u64 * session_len,
            "at most one clean session per trial: {} BIST cycles over {} trials \
             of {session_len}-cycle sessions",
            f.bist_cycle_sum,
            f.trials
        );
    }

    #[test]
    #[should_panic(expected = "bank 9")]
    fn out_of_range_bank_panics() {
        let engine = DiagCampaign::new(config(), policy(), campaign());
        let mut universe = engine.diag_universe(2, 0);
        universe[0].bank = 9;
        engine.run(&universe);
    }
}
