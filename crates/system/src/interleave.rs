//! Address interleaving: routing one flat system address space over many
//! banks.
//!
//! The system exposes `total_words = Σ bank words` addresses; an
//! [`Interleaver`] maps each global address to a `(bank, local address)`
//! pair. Two classic policies ship:
//!
//! * [`Interleaving::LowOrder`] — bank = `addr mod N`: consecutive
//!   addresses stripe across banks, spreading sequential and bursty
//!   traffic evenly (the throughput-friendly choice).
//! * [`Interleaving::HighOrder`] — contiguous ranges: each bank owns a
//!   consecutive slab of the address space, so locality stays within one
//!   bank (the latency-heterogeneity-friendly choice, and the one that
//!   starves cold banks of traffic — exactly the effect the system
//!   campaign measures).
//!
//! Banks may be **heterogeneous** in size. Low-order striping then wraps
//! each bank's local address modulo its own word count (documented, not
//! hidden: the global space is still `Σ words`, but a small bank folds the
//! stripe back onto itself).

/// Interleaving policy of a multi-bank system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interleaving {
    /// Bank = address mod N (striped).
    LowOrder,
    /// Contiguous address slab per bank.
    HighOrder,
}

impl Interleaving {
    /// Short CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Interleaving::LowOrder => "low-order",
            Interleaving::HighOrder => "high-order",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(name: &str) -> Option<Interleaving> {
        match name {
            "low-order" => Some(Interleaving::LowOrder),
            "high-order" => Some(Interleaving::HighOrder),
            _ => None,
        }
    }
}

/// A concrete routing table: policy plus the bank word counts.
#[derive(Debug, Clone)]
pub struct Interleaver {
    kind: Interleaving,
    bank_words: Vec<u64>,
    /// Exclusive prefix sums of `bank_words` (high-order slab starts).
    starts: Vec<u64>,
    total: u64,
}

impl Interleaver {
    /// Build a router over the given bank sizes.
    ///
    /// # Panics
    /// Panics if there are no banks or a bank is empty.
    pub fn new(kind: Interleaving, bank_words: &[u64]) -> Self {
        assert!(!bank_words.is_empty(), "a system needs at least one bank");
        assert!(
            bank_words.iter().all(|&w| w > 0),
            "banks must hold at least one word"
        );
        let mut starts = Vec::with_capacity(bank_words.len());
        let mut total = 0u64;
        for &w in bank_words {
            starts.push(total);
            total += w;
        }
        Interleaver {
            kind,
            bank_words: bank_words.to_vec(),
            starts,
            total,
        }
    }

    /// The interleaving policy.
    pub fn kind(&self) -> Interleaving {
        self.kind
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.bank_words.len()
    }

    /// Size of the flat system address space.
    pub fn total_words(&self) -> u64 {
        self.total
    }

    /// Word count of each bank, in bank order.
    pub fn bank_words(&self) -> &[u64] {
        &self.bank_words
    }

    /// Route a global address to its `(bank, local address)`.
    ///
    /// # Panics
    /// Panics if `addr` is outside the system address space.
    pub fn route(&self, addr: u64) -> (usize, u64) {
        assert!(
            addr < self.total,
            "address {addr} out of {} system words",
            self.total
        );
        match self.kind {
            Interleaving::LowOrder => {
                let n = self.bank_words.len() as u64;
                let bank = (addr % n) as usize;
                (bank, (addr / n) % self.bank_words[bank])
            }
            Interleaving::HighOrder => {
                // starts is sorted; partition_point finds the owning slab.
                let bank = self.starts.partition_point(|&s| s <= addr) - 1;
                (bank, addr - self.starts[bank])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for kind in [Interleaving::LowOrder, Interleaving::HighOrder] {
            assert_eq!(Interleaving::parse(kind.name()), Some(kind));
        }
        assert_eq!(Interleaving::parse("diagonal"), None);
    }

    #[test]
    fn low_order_stripes_across_banks() {
        let il = Interleaver::new(Interleaving::LowOrder, &[8, 8, 8]);
        assert_eq!(il.total_words(), 24);
        assert_eq!(il.route(0), (0, 0));
        assert_eq!(il.route(1), (1, 0));
        assert_eq!(il.route(2), (2, 0));
        assert_eq!(il.route(3), (0, 1));
        assert_eq!(il.route(23), (2, 7));
    }

    #[test]
    fn high_order_assigns_contiguous_slabs() {
        let il = Interleaver::new(Interleaving::HighOrder, &[4, 8, 2]);
        assert_eq!(il.total_words(), 14);
        assert_eq!(il.route(0), (0, 0));
        assert_eq!(il.route(3), (0, 3));
        assert_eq!(il.route(4), (1, 0));
        assert_eq!(il.route(11), (1, 7));
        assert_eq!(il.route(12), (2, 0));
        assert_eq!(il.route(13), (2, 1));
    }

    #[test]
    fn heterogeneous_low_order_wraps_small_banks() {
        // Bank 1 holds 2 words; the stripe folds its local addresses mod 2.
        let il = Interleaver::new(Interleaving::LowOrder, &[8, 2]);
        assert_eq!(il.route(1), (1, 0));
        assert_eq!(il.route(3), (1, 1));
        assert_eq!(il.route(5), (1, 0), "small bank wraps");
        // Every route stays in range.
        for addr in 0..il.total_words() {
            let (bank, local) = il.route(addr);
            assert!(local < [8, 2][bank], "addr {addr}");
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_address_panics() {
        Interleaver::new(Interleaving::LowOrder, &[4]).route(4);
    }
}
