//! Fault-simulation backends: one interface over the behavioural RAM
//! simulator and the gate-level netlist simulator.
//!
//! Detection-latency measurement ([`crate::sim::measure_detection_on`]),
//! the Monte-Carlo campaigns ([`crate::engine::CampaignEngine`]) and the
//! cross-model validation tests all drive a [`FaultSimBackend`]: reset it
//! to a pre-fault state with a [`FaultScenario`] loaded, feed it the
//! workload's operation stream, observe per-cycle error/detection
//! behaviour. A scenario is a **site × temporal process**: the classical
//! injected-at-reset stuck-at is `FaultProcess::Permanent { onset: 0 }`,
//! and the backends additionally realise delayed-onset permanents,
//! one-shot transient flips, duty-cycled intermittents and cell-coupling
//! defects, all indexed on the cycle clock that restarts at `reset`.
//!
//! Two implementations ship:
//!
//! * [`BehavioralBackend`] — the cycle-level [`SelfCheckingRam`] run
//!   against a fault-free twin on the same stream. Observes both
//!   *erroneous outputs* (data/parity differing from the twin) and
//!   checker indications. This is the campaign workhorse: O(1) per cycle.
//!   State-resident corruption (a transient flip in a cell, a coupling
//!   victim) additionally heals on **detect-and-restore**: the cycle a
//!   read raises an indication, the addressed word is restored from the
//!   reference image — the recovery step the system context performs on
//!   detection, which is what lets scrub reads genuinely clear soft
//!   errors.
//! * [`GateLevelBackend`] — the actual generated hardware of the checking
//!   path (multilevel decoder → NOR matrix → `q`-out-of-`r` checker) for
//!   both address decoders, with the stuck-at injected on the exact
//!   generated signal only while the scenario's process pins it. Ground
//!   truth for decoder faults; batches cycles 64-at-a-time through
//!   [`Netlist::eval64`] since the path is combinational, splitting
//!   bursts at activation-window boundaries so batching honours the
//!   temporal process exactly. It does not model the cell array, so it
//!   reports checker verdicts only (`erroneous` is [`None`]).

use crate::decoder_unit::DecoderFault;
use crate::design::{RamConfig, SelfCheckingRam, Verdict};
use crate::fault::{CellRef, FaultProcess, FaultScenario, FaultSite};
use crate::workload::Op;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scm_checkers::{Checker, MOutOfNChecker};
use scm_codes::{CodewordMap, MOutOfN, TwoRail};
use scm_decoder::fault_map::fault_sites;
use scm_decoder::{build_multilevel_decoder, DecoderFaultSite};
use scm_logic::{Fault, Netlist, SignalId};
use scm_rom::RomMatrix;

/// What a backend observed on one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleObservation {
    /// Did the cycle deliver an erroneous output to the system?
    /// [`None`] when the backend cannot observe the data path.
    pub erroneous: Option<bool>,
    /// Checker outputs for the cycle (backends that cannot evaluate a
    /// checker report its field as `false`).
    pub verdict: Verdict,
}

impl CycleObservation {
    /// Any checker raised an error indication this cycle.
    pub fn detected(&self) -> bool {
        self.verdict.any_error()
    }
}

/// A simulation model that can run fault-injection trials.
pub trait FaultSimBackend {
    /// Backend name for reports and test diagnostics.
    fn name(&self) -> &'static str;

    /// The simulated design's configuration (geometry + mappings).
    fn config(&self) -> &RamConfig;

    /// Can this backend realise the given scenario?
    fn supports(&self, scenario: &FaultScenario) -> bool;

    /// Restore the pre-fault state, load `scenario` (`None` for a
    /// fault-free run) and restart the activation clock at cycle 0.
    ///
    /// # Panics
    /// Panics if the scenario is not [supported](Self::supports).
    fn reset(&mut self, scenario: Option<&FaultScenario>);

    /// Convenience for the classical model: reset with `fault` pinned
    /// from cycle 0 (`FaultProcess::Permanent { onset: 0 }`) — the exact
    /// semantics of the historical `Option<FaultSite>` contract.
    fn reset_site(&mut self, fault: Option<FaultSite>) {
        let scenario = fault.map(FaultScenario::permanent);
        self.reset(scenario.as_ref());
    }

    /// Execute one operation and report what happened.
    fn step(&mut self, op: Op) -> CycleObservation;

    /// Advance the activation clock by `cycles` without executing an
    /// operation — how a multi-bank scheduler keeps a bank's temporal
    /// process on the *global* clock while other banks consume the
    /// cycles. A one-shot flip whose instant falls inside the skipped
    /// window is applied before the next observation (observationally
    /// identical, since nothing reads the bank in between). The default
    /// is a no-op, correct for purely permanent backends.
    fn advance(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// Execute a burst of operations.
    ///
    /// The default implementation steps serially; combinational backends
    /// override it with bit-parallel sweeps. Semantics must be identical
    /// to repeated [`step`](Self::step) calls.
    fn step_many(&mut self, ops: &[Op]) -> Vec<CycleObservation> {
        ops.iter().map(|&op| self.step(op)).collect()
    }

    /// Should measurement drive this backend through
    /// [`step_many`](Self::step_many) bursts? `false` for stateful
    /// backends, where the serial loop's early exit at first detection
    /// saves work; `true` when batched evaluation beats per-op stepping.
    fn prefers_batching(&self) -> bool {
        false
    }
}

/// Compare one operation on the faulty design against the fault-free twin.
pub(crate) fn compare_step(
    faulty: &mut SelfCheckingRam,
    golden: &mut SelfCheckingRam,
    op: Op,
) -> CycleObservation {
    match op {
        Op::Read(addr) => {
            let f = faulty.read(addr);
            let g = golden.read(addr);
            CycleObservation {
                erroneous: Some(f.data != g.data || f.parity_bit != g.parity_bit),
                verdict: f.verdict,
            }
        }
        Op::Write(addr, value) => {
            let fv = faulty.write(addr, value);
            let _ = golden.write(addr, value);
            // A write delivers no data to the system; only the checkers
            // speak.
            CycleObservation {
                erroneous: Some(false),
                verdict: fv,
            }
        }
    }
}

/// The behavioural RAM simulator paired with a fault-free twin.
#[derive(Debug, Clone)]
pub struct BehavioralBackend {
    base: SelfCheckingRam,
    // Populated lazily: the engine clones the whole backend once per
    // trial block, and eager twin copies here would triple that cost
    // only to be overwritten by the first `reset`.
    faulty: Option<SelfCheckingRam>,
    golden: Option<SelfCheckingRam>,
    scenario: Option<FaultScenario>,
    cycle: u64,
    /// The scenario's site is currently injected into `faulty`.
    pinned: bool,
    /// The one-shot state flip already happened.
    fired: bool,
}

impl BehavioralBackend {
    /// Backend over a zero-initialised RAM.
    pub fn new(config: &RamConfig) -> Self {
        Self::from_state(SelfCheckingRam::new(config.clone()))
    }

    /// Backend whose pre-fault state is a deterministic random fill
    /// (the campaign convention: every word written once from a seeded
    /// stream).
    pub fn prefilled(config: &RamConfig, seed: u64) -> Self {
        let mut base = SelfCheckingRam::new(config.clone());
        let org = config.org();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mask = if org.word_bits() >= 64 {
            u64::MAX
        } else {
            (1u64 << org.word_bits()) - 1
        };
        for addr in 0..org.words() {
            base.write(addr, rng.gen::<u64>() & mask);
        }
        Self::from_state(base)
    }

    /// Backend whose pre-fault state is an explicitly prepared RAM.
    pub fn from_state(base: SelfCheckingRam) -> Self {
        BehavioralBackend {
            base,
            faulty: None,
            golden: None,
            scenario: None,
            cycle: 0,
            pinned: false,
            fired: false,
        }
    }

    /// The faulty design (for instrumentation); the pre-fault state if
    /// the backend has not stepped since its last reset.
    pub fn faulty(&self) -> &SelfCheckingRam {
        self.faulty.as_ref().unwrap_or(&self.base)
    }

    /// The fault-free twin (for instrumentation and differential tests);
    /// the pre-fault state if the backend has not stepped since reset.
    pub fn golden(&self) -> &SelfCheckingRam {
        self.golden.as_ref().unwrap_or(&self.base)
    }

    /// Cycles stepped (or skipped via [`advance`]) since the last reset —
    /// the activation clock temporal processes index.
    ///
    /// [`advance`]: FaultSimBackend::advance
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Bring the faulty design's fault state in line with the scenario's
    /// activation window for the current cycle.
    fn sync_activation(&mut self) {
        let Some(scenario) = self.scenario else {
            return;
        };
        let faulty = self.faulty.get_or_insert_with(|| self.base.clone());
        // A transient on a storage cell is state corruption, not a pinned
        // line: flip the stored bit once the instant is reached (a window
        // skipped by `advance` fires here, before the next observation).
        if let (FaultProcess::TransientFlip { at }, FaultSite::Cell { row, col, .. }) =
            (scenario.process, scenario.site)
        {
            if !self.fired && self.cycle >= at {
                faulty.flip_cell(row, col);
                self.fired = true;
            }
            return;
        }
        // Coupling is installed once at reset; corruption rides aggressor
        // writes, never the clock.
        if matches!(scenario.process, FaultProcess::Coupling { .. }) {
            return;
        }
        // Every remaining process pins the site inside its window.
        let pin = scenario.process.pins_site_at(self.cycle);
        if pin != self.pinned {
            if pin {
                faulty.inject(scenario.site);
            } else {
                faulty.clear_fault();
            }
            self.pinned = pin;
        }
    }
}

impl FaultSimBackend for BehavioralBackend {
    fn name(&self) -> &'static str {
        "behavioral"
    }

    fn config(&self) -> &RamConfig {
        self.base.config()
    }

    fn supports(&self, scenario: &FaultScenario) -> bool {
        match scenario.process {
            FaultProcess::Coupling { aggressor, .. } => {
                matches!(scenario.site, FaultSite::Cell { row, col, .. }
                    if CellRef { row, col } != aggressor)
            }
            _ => true,
        }
    }

    fn reset(&mut self, scenario: Option<&FaultScenario>) {
        self.scenario = scenario.copied();
        self.cycle = 0;
        self.pinned = false;
        self.fired = false;
        let mut faulty = self.base.clone();
        if let Some(s) = self.scenario {
            match s.process {
                // The classical model injects eagerly, so the pre-step
                // state is inspectable exactly as it always was.
                FaultProcess::Permanent { onset: 0 } => {
                    faulty.inject(s.site);
                    self.pinned = true;
                }
                FaultProcess::Coupling { aggressor, kind } => {
                    let FaultSite::Cell { row, col, .. } = s.site else {
                        panic!("coupling victim must be a cell, got {}", s.site);
                    };
                    faulty.inject_coupling(CellRef { row, col }, aggressor, kind);
                }
                // Delayed processes activate on the cycle clock.
                _ => {}
            }
        }
        self.faulty = Some(faulty);
        self.golden = Some(self.base.clone());
    }

    fn step(&mut self, op: Op) -> CycleObservation {
        self.sync_activation();
        if self.faulty.is_none() {
            self.faulty = Some(self.base.clone());
        }
        if self.golden.is_none() {
            self.golden = Some(self.base.clone());
        }
        let faulty = self.faulty.as_mut().expect("populated above");
        let golden = self.golden.as_mut().expect("populated above");
        let obs = compare_step(faulty, golden, op);
        // Detect-and-restore: an indication on a read of state-resident
        // corruption triggers the recovery the system context performs
        // (the word is restored from the reference image). Pinned-defect
        // scenarios never restore — the defect would immediately
        // re-corrupt, and pretending otherwise would hide it.
        if obs.detected() && self.scenario.is_some_and(|s| s.corrupts_state()) {
            if let Op::Read(addr) = op {
                faulty.restore_word_from(golden, addr);
            }
        }
        self.cycle += 1;
        obs
    }

    fn advance(&mut self, cycles: u64) {
        self.cycle = self.cycle.saturating_add(cycles);
    }
}

/// One decoder's gate-level checking path: decoder → NOR matrix → checker.
#[derive(Debug, Clone)]
struct CheckingPath {
    netlist: Netlist,
    sites: Vec<DecoderFaultSite>,
    rails: (SignalId, SignalId),
    /// Lane buffer reused across [`Netlist::eval64_into`] sweeps — one
    /// `num_signals()`-sized allocation per path, not per burst.
    scratch: Vec<u64>,
}

impl CheckingPath {
    fn build(address_bits: u32, map: &CodewordMap) -> Result<Self, String> {
        if map.num_lines() != 1u64 << address_bits {
            return Err(format!(
                "mapping covers {} lines but a {address_bits}-bit decoder drives {} \
                 (degenerate geometries like a 1-way mux have no gate-level checking path)",
                map.num_lines(),
                1u64 << address_bits
            ));
        }
        // Recover the q-out-of-r code from the mapping: constant-weight
        // codewords make q observable on any table entry.
        let r = map.width() as u32;
        let q = map.codeword_for(0).count_ones();
        if (0..map.num_lines()).any(|line| map.codeword_for(line).count_ones() != q) {
            return Err(format!(
                "gate-level backend needs a constant-weight mapping, got {}",
                map.code_name()
            ));
        }
        let code = MOutOfN::new(q, r)
            .map_err(|e| format!("mapping width {r} / weight {q} is not a valid code: {e}"))?;
        let mut netlist = Netlist::new();
        let addr = netlist.inputs(address_bits as usize);
        let dec = build_multilevel_decoder(&mut netlist, &addr, 2);
        let rom_outputs = RomMatrix::from_map(map).build_netlist(&mut netlist, dec.outputs());
        let rails = MOutOfNChecker::new(code).build_netlist(&mut netlist, &rom_outputs);
        netlist.expose(rails.0);
        netlist.expose(rails.1);
        let sites = fault_sites(&dec);
        Ok(CheckingPath {
            netlist,
            sites,
            rails,
            scratch: Vec::new(),
        })
    }

    fn signal_for(&self, fault: &DecoderFault) -> Option<Fault> {
        self.sites
            .iter()
            .find(|s| s.bits == fault.bits && s.offset == fault.offset && s.value == fault.value)
            .map(|s| {
                if fault.stuck_one {
                    Fault::stuck_at_1(s.signal)
                } else {
                    Fault::stuck_at_0(s.signal)
                }
            })
    }

    fn flags(&self, value: u64, fault: Option<Fault>) -> bool {
        let eval = self.netlist.eval_word(value, fault);
        TwoRail {
            t: eval.value(self.rails.0),
            f: eval.value(self.rails.1),
        }
        .is_error()
    }

    /// Evaluate up to 64 applied values in one bit-parallel sweep. Takes
    /// `&mut self` only to reuse the lane scratch buffer; the result is a
    /// pure function of `(values, fault)`.
    fn flags_batch(&mut self, values: &[u64], fault: Option<Fault>) -> Vec<bool> {
        assert!(values.len() <= 64, "at most 64 values per sweep");
        let lanes = self.netlist.pack_patterns(values);
        self.netlist.eval64_into(&lanes, fault, &mut self.scratch);
        let t_lane = self.scratch[self.rails.0.index()];
        let f_lane = self.scratch[self.rails.1.index()];
        (0..values.len())
            .map(|k| {
                TwoRail {
                    t: t_lane >> k & 1 == 1,
                    f: f_lane >> k & 1 == 1,
                }
                .is_error()
            })
            .collect()
    }
}

/// The generated checking hardware of both address decoders, simulated at
/// gate level with stuck-ats on the exact generated signals.
#[derive(Debug, Clone)]
pub struct GateLevelBackend {
    config: RamConfig,
    row: CheckingPath,
    col: CheckingPath,
    row_fault: Option<Fault>,
    col_fault: Option<Fault>,
    process: FaultProcess,
    cycle: u64,
}

impl GateLevelBackend {
    /// Build the checking path for `config`'s row and column decoders.
    ///
    /// # Errors
    /// Returns a description when the mappings are not constant-weight
    /// (the `q`-out-of-`r` checker generator cannot realise them).
    pub fn try_new(config: &RamConfig) -> Result<Self, String> {
        let org = config.org();
        let row = CheckingPath::build(org.row_bits(), config.row_map())?;
        let col = CheckingPath::build(org.col_bits().max(1), config.col_map())?;
        Ok(GateLevelBackend {
            config: config.clone(),
            row,
            col,
            row_fault: None,
            col_fault: None,
            process: FaultProcess::PERMANENT,
            cycle: 0,
        })
    }

    /// Gate count of the checking path (both decoders' netlists).
    pub fn num_gates(&self) -> usize {
        self.row.netlist.num_gates() + self.col.netlist.num_gates()
    }

    fn split(&self, addr: u64) -> (u64, u64) {
        self.config.split_address(addr)
    }

    /// Is the loaded fault realised on `cycle`? Combinational sites have
    /// no state, so every process reduces to its activation window.
    fn active_at(&self, cycle: u64) -> bool {
        (self.row_fault.is_some() || self.col_fault.is_some()) && self.process.pins_site_at(cycle)
    }

    fn observe(&self, row_flags: bool, col_flags: bool) -> CycleObservation {
        CycleObservation {
            erroneous: None,
            verdict: Verdict {
                row_code_error: row_flags,
                col_code_error: col_flags,
                parity_error: false,
            },
        }
    }
}

impl FaultSimBackend for GateLevelBackend {
    fn name(&self) -> &'static str {
        "gate-level"
    }

    fn config(&self) -> &RamConfig {
        &self.config
    }

    fn supports(&self, scenario: &FaultScenario) -> bool {
        let site_ok = match &scenario.site {
            FaultSite::RowDecoder(f) => self.row.signal_for(f).is_some(),
            FaultSite::ColDecoder(f) => self.col.signal_for(f).is_some(),
            _ => false,
        };
        // Coupling needs a cell victim, which the site check already
        // excludes; every clock-windowed process is realisable.
        site_ok && !matches!(scenario.process, FaultProcess::Coupling { .. })
    }

    fn reset(&mut self, scenario: Option<&FaultScenario>) {
        self.row_fault = None;
        self.col_fault = None;
        self.process = FaultProcess::PERMANENT;
        self.cycle = 0;
        match scenario {
            None => {}
            Some(s) => {
                match s.site {
                    FaultSite::RowDecoder(f) => {
                        self.row_fault = Some(
                            self.row
                                .signal_for(&f)
                                .unwrap_or_else(|| panic!("no gate-level site for {f:?}")),
                        );
                    }
                    FaultSite::ColDecoder(f) => {
                        self.col_fault = Some(
                            self.col
                                .signal_for(&f)
                                .unwrap_or_else(|| panic!("no gate-level site for {f:?}")),
                        );
                    }
                    other => panic!("gate-level backend cannot inject {other:?}"),
                }
                assert!(
                    !matches!(s.process, FaultProcess::Coupling { .. }),
                    "gate-level backend cannot realise coupling processes"
                );
                self.process = s.process;
            }
        }
    }

    fn step(&mut self, op: Op) -> CycleObservation {
        let (rv, cv) = self.split(op.addr());
        let (rf, cf) = if self.active_at(self.cycle) {
            (self.row_fault, self.col_fault)
        } else {
            (None, None)
        };
        self.cycle += 1;
        self.observe(self.row.flags(rv, rf), self.col.flags(cv, cf))
    }

    fn advance(&mut self, cycles: u64) {
        self.cycle = self.cycle.saturating_add(cycles);
    }

    fn prefers_batching(&self) -> bool {
        true
    }

    /// Bit-parallel burst: the checking path is combinational, so up to
    /// 64 cycles collapse into one [`Netlist::eval64`] sweep per decoder.
    /// Bursts split at activation-window boundaries, so a temporal
    /// process (delayed onset, transient glitch, intermittent duty
    /// cycle) is honoured bit-exactly by the batched path.
    fn step_many(&mut self, ops: &[Op]) -> Vec<CycleObservation> {
        let mut out = Vec::with_capacity(ops.len());
        let mut i = 0usize;
        while i < ops.len() {
            let active = self.active_at(self.cycle);
            let mut len = 1usize;
            while len < 64
                && i + len < ops.len()
                && self.active_at(self.cycle + len as u64) == active
            {
                len += 1;
            }
            let chunk = &ops[i..i + len];
            let (rvs, cvs): (Vec<u64>, Vec<u64>) =
                chunk.iter().map(|op| self.split(op.addr())).unzip();
            let (rf, cf) = if active {
                (self.row_fault, self.col_fault)
            } else {
                (None, None)
            };
            let row_flags = self.row.flags_batch(&rvs, rf);
            let col_flags = self.col.flags_batch(&cvs, cf);
            for (r, c) in row_flags.into_iter().zip(col_flags) {
                out.push(self.observe(r, c));
            }
            self.cycle += len as u64;
            i += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CouplingKind;
    use scm_area::RamOrganization;

    fn config() -> RamConfig {
        let org = RamOrganization::new(64, 8, 4);
        let code = MOutOfN::new(3, 5).unwrap();
        RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, 16).unwrap(),
            CodewordMap::mod_a(code, 9, 4).unwrap(),
        )
    }

    fn all_decoder_faults() -> Vec<FaultSite> {
        crate::campaign::decoder_fault_universe(4)
            .into_iter()
            .map(FaultSite::RowDecoder)
            .collect()
    }

    #[test]
    fn behavioral_reset_restores_prefill() {
        let mut b = BehavioralBackend::prefilled(&config(), 7);
        let before = b.faulty().read(5).data;
        b.reset_site(Some(FaultSite::DataRegisterBit {
            bit: 0,
            stuck: true,
        }));
        let _ = b.step(Op::Write(5, 0));
        b.reset(None);
        assert_eq!(b.faulty().read(5).data, before, "reset must undo writes");
        assert_eq!(b.faulty().fault(), None, "reset(None) must clear the fault");
    }

    #[test]
    fn gate_backend_supports_exactly_decoder_faults() {
        let backend = GateLevelBackend::try_new(&config()).unwrap();
        for site in all_decoder_faults() {
            assert!(backend.supports(&site.into()), "{site:?}");
        }
        assert!(!backend.supports(
            &FaultSite::Cell {
                row: 0,
                col: 0,
                stuck: true
            }
            .into()
        ));
        assert!(!backend.supports(
            &FaultSite::DataRegisterBit {
                bit: 0,
                stuck: false
            }
            .into()
        ));
    }

    #[test]
    fn gate_fault_free_run_is_silent() {
        let mut backend = GateLevelBackend::try_new(&config()).unwrap();
        backend.reset(None);
        for addr in 0..64u64 {
            assert!(!backend.step(Op::Read(addr)).detected(), "addr {addr}");
        }
    }

    #[test]
    fn gate_step_many_matches_serial_steps() {
        let mut backend = GateLevelBackend::try_new(&config()).unwrap();
        let ops: Vec<Op> = (0..64u64).chain(0..64).map(Op::Read).collect();
        for site in all_decoder_faults() {
            backend.reset_site(Some(site));
            let batched = backend.step_many(&ops);
            backend.reset_site(Some(site));
            let serial: Vec<CycleObservation> = ops.iter().map(|&op| backend.step(op)).collect();
            assert_eq!(batched, serial, "{site:?}");
        }
    }

    #[test]
    fn gate_step_many_honours_activation_windows() {
        // Windows that straddle and subdivide the 64-lane bursts: the
        // batched path must split at every boundary and agree with the
        // serial loop bit-exactly.
        let mut backend = GateLevelBackend::try_new(&config()).unwrap();
        let ops: Vec<Op> = (0..64u64).chain(0..64).chain(0..32).map(Op::Read).collect();
        let site = all_decoder_faults()[3];
        for process in [
            FaultProcess::Permanent { onset: 70 },
            FaultProcess::TransientFlip { at: 65 },
            FaultProcess::Intermittent {
                onset: 3,
                period: 7,
                duty: 2,
            },
        ] {
            let scenario = FaultScenario { site, process };
            backend.reset(Some(&scenario));
            let batched = backend.step_many(&ops);
            backend.reset(Some(&scenario));
            let serial: Vec<CycleObservation> = ops.iter().map(|&op| backend.step(op)).collect();
            assert_eq!(batched, serial, "{scenario}");
        }
    }

    #[test]
    fn gate_and_behavioral_agree_on_code_verdicts() {
        let cfg = config();
        let mut gate = GateLevelBackend::try_new(&cfg).unwrap();
        let mut beh = BehavioralBackend::prefilled(&cfg, 99);
        for site in all_decoder_faults() {
            gate.reset_site(Some(site));
            beh.reset_site(Some(site));
            for addr in 0..64u64 {
                let g = gate.step(Op::Read(addr));
                let b = beh.step(Op::Read(addr));
                assert_eq!(
                    g.verdict.row_code_error, b.verdict.row_code_error,
                    "{site:?} addr {addr}"
                );
                assert_eq!(
                    g.verdict.col_code_error, b.verdict.col_code_error,
                    "{site:?} addr {addr}"
                );
            }
        }
    }

    #[test]
    fn delayed_onset_pins_nothing_before_its_cycle() {
        let cfg = config();
        let site = FaultSite::RowDecoder(DecoderFault {
            bits: 4,
            offset: 0,
            value: 5,
            stuck_one: false,
        });
        let mut b = BehavioralBackend::prefilled(&cfg, 3);
        b.reset(Some(&FaultScenario {
            site,
            process: FaultProcess::Permanent { onset: 4 },
        }));
        // Reading the stuck row before onset is clean; from onset the SA0
        // collapse flags the same cycle.
        for cycle in 0..8u64 {
            let obs = b.step(Op::Read(5 * 4));
            assert_eq!(obs.detected(), cycle >= 4, "cycle {cycle}");
        }
    }

    #[test]
    fn transient_cell_flip_corrupts_heals_on_detection_and_stays_healed() {
        let cfg = config();
        let mut b = BehavioralBackend::prefilled(&cfg, 11);
        // Word (row 2, col-select 1): bit group 0 lives at physical
        // column 0*4 + 1.
        let addr = 2 * 4 + 1;
        let clean = b.faulty().read(addr).data;
        b.reset(Some(&FaultScenario::transient(
            FaultSite::Cell {
                row: 2,
                col: 1,
                stuck: false,
            },
            3,
        )));
        // Before the flip: differentially silent.
        for _ in 0..3 {
            let obs = b.step(Op::Read(addr));
            assert_eq!(obs.erroneous, Some(false));
            assert!(!obs.detected());
        }
        // The flip cycle: wrong data *and* a parity indication, which
        // triggers detect-and-restore.
        let obs = b.step(Op::Read(addr));
        assert_eq!(obs.erroneous, Some(true));
        assert!(obs.verdict.parity_error, "single-bit flip trips parity");
        // Healed: the word matches the twin again, cycle by cycle.
        for _ in 0..4 {
            let obs = b.step(Op::Read(addr));
            assert_eq!(obs.erroneous, Some(false));
            assert!(!obs.detected());
        }
        assert_eq!(b.faulty().read(addr).data, clean);
    }

    #[test]
    fn transient_flip_cleared_by_rewrite_without_any_read() {
        let cfg = config();
        let mut b = BehavioralBackend::prefilled(&cfg, 11);
        let addr = 2 * 4 + 1;
        b.reset(Some(&FaultScenario::transient(
            FaultSite::Cell {
                row: 2,
                col: 1,
                stuck: false,
            },
            0,
        )));
        let _ = b.step(Op::Write(addr, 0x5A));
        let obs = b.step(Op::Read(addr));
        assert_eq!(obs.erroneous, Some(false), "a rewrite clears the flip");
        assert!(!obs.detected());
    }

    #[test]
    fn intermittent_cell_flags_only_inside_active_windows() {
        let cfg = config();
        let mut b = BehavioralBackend::prefilled(&cfg, 5);
        let addr = 2 * 4 + 1;
        // Pick the polarity opposite to the stored bit so every active
        // window genuinely corrupts the read.
        let stored = b.faulty().read(addr).data & 1 == 1;
        b.reset(Some(&FaultScenario {
            site: FaultSite::Cell {
                row: 2,
                col: 1,
                stuck: !stored,
            },
            process: FaultProcess::Intermittent {
                onset: 2,
                period: 4,
                duty: 2,
            },
        }));
        for cycle in 0..12u64 {
            let obs = b.step(Op::Read(addr));
            let active = cycle >= 2 && (cycle - 2) % 4 < 2;
            assert_eq!(obs.detected(), active, "cycle {cycle}");
            assert_eq!(obs.erroneous, Some(active), "cycle {cycle}");
        }
    }

    #[test]
    fn coupling_victim_corrupts_on_aggressor_transition_only() {
        let cfg = config();
        let mut b = BehavioralBackend::prefilled(&cfg, 21);
        // Victim word (row 1, col-select 0) bit 0 = physical col 0;
        // aggressor word (row 3, col-select 2) bit 0 = physical col 2.
        let victim_addr = 4;
        let aggressor_addr = 3 * 4 + 2;
        let scenario = FaultScenario {
            site: FaultSite::Cell {
                row: 1,
                col: 0,
                stuck: false,
            },
            process: FaultProcess::Coupling {
                aggressor: CellRef { row: 3, col: 2 },
                kind: CouplingKind::Inversion,
            },
        };
        assert!(b.supports(&scenario));
        b.reset(Some(&scenario));
        let current = b.faulty().read(aggressor_addr).data;
        let before = current & 1;
        // Rewriting the aggressor's current value is not a transition.
        let _ = b.step(Op::Write(aggressor_addr, current));
        let obs = b.step(Op::Read(victim_addr));
        assert_eq!(obs.erroneous, Some(false), "no transition, no corruption");
        // A genuine transition flips the victim, caught by parity on the
        // victim's next read (and then detect-and-restore heals it).
        let _ = b.step(Op::Write(aggressor_addr, (before ^ 1) & 1));
        let obs = b.step(Op::Read(victim_addr));
        assert_eq!(obs.erroneous, Some(true));
        assert!(obs.verdict.parity_error);
        let obs = b.step(Op::Read(victim_addr));
        assert_eq!(obs.erroneous, Some(false), "restored after detection");
    }

    #[test]
    fn advance_keeps_the_activation_clock_global() {
        let cfg = config();
        let addr = 2 * 4 + 1;
        let mut b = BehavioralBackend::prefilled(&cfg, 11);
        b.reset(Some(&FaultScenario::transient(
            FaultSite::Cell {
                row: 2,
                col: 1,
                stuck: false,
            },
            10,
        )));
        // Five stepped cycles, five skipped: the flip instant (10) falls
        // in the skipped window and must fire before the next read.
        for _ in 0..5 {
            let obs = b.step(Op::Read(addr));
            assert!(!obs.detected());
        }
        b.advance(5);
        assert_eq!(b.cycle(), 10);
        let obs = b.step(Op::Read(addr));
        assert_eq!(obs.erroneous, Some(true), "flip fired during the skip");
    }

    #[test]
    fn one_way_mux_rejected_with_err_not_panic() {
        // col_bits = 0 degenerates to a 1-bit column decoder driving two
        // lines, but the column mapping covers only one — the documented
        // Err contract, not a panic inside netlist construction.
        let org = RamOrganization::new(64, 8, 1);
        let code = MOutOfN::new(3, 5).unwrap();
        let cfg = RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, 64).unwrap(),
            CodewordMap::mod_a(code, 9, 1).unwrap(),
        );
        let err = GateLevelBackend::try_new(&cfg).unwrap_err();
        assert!(err.contains("1-bit decoder"), "{err}");
    }

    #[test]
    fn berger_mapping_rejected_with_explanation() {
        let org = RamOrganization::new(64, 8, 4);
        let row_map = CodewordMap::berger(4, 16).unwrap();
        let col_map = CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), 9, 4).unwrap();
        let cfg = RamConfig::new(org, row_map, col_map);
        let err = GateLevelBackend::try_new(&cfg).unwrap_err();
        assert!(err.contains("constant-weight"), "{err}");
    }
}
