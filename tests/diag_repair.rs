//! The repair soundness property, end to end (ISSUE 4 acceptance):
//! for **any** localized single cell fault with a spare available, the
//! post-repair memory passes a full March C− clean run, and the original
//! mission differential oracle (the campaign engine that measured the
//! faulty design) reports zero escapes for that site.
//!
//! The dictionary is built once over the full cell universe plus every
//! row-decoder fault, then each generated case walks the whole
//! detect → localize → repair → re-verify pipeline. Cells the March
//! cannot see at all (the documented even-width parity-background blind
//! spot) are asserted to be exactly that blind spot, never a silent
//! localization failure.

use proptest::prelude::*;
use scm_area::RamOrganization;
use scm_codes::{CodewordMap, MOutOfN};
use scm_diag::{background, cell_universe, run_session, FaultDictionary, MarchTest, SpareBudget};
use scm_memory::campaign::{decoder_fault_universe, CampaignConfig};
use scm_memory::design::RamConfig;
use scm_memory::fault::FaultSite;
use std::sync::OnceLock;

const MARCH_SEED: u64 = 0xD1A6;

fn config() -> RamConfig {
    let org = RamOrganization::new(64, 8, 4);
    let code = MOutOfN::new(3, 5).unwrap();
    RamConfig::new(
        org,
        CodewordMap::mod_a(code, 9, org.rows()).unwrap(),
        CodewordMap::mod_a(code, 9, 4).unwrap(),
    )
}

fn dictionary() -> &'static FaultDictionary {
    static DICT: OnceLock<FaultDictionary> = OnceLock::new();
    DICT.get_or_init(|| {
        let cfg = config();
        let mut candidates = cell_universe(&cfg);
        candidates.extend(
            decoder_fault_universe(cfg.org().row_bits())
                .into_iter()
                .map(FaultSite::RowDecoder),
        );
        FaultDictionary::build(
            &cfg,
            &MarchTest::march_c_minus(),
            MARCH_SEED,
            &candidates,
            0,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_localized_cell_fault_repairs_to_a_clean_march_and_zero_escapes(
        row in 0usize..16,
        col in 0usize..36,
        stuck in proptest::prelude::any::<bool>(),
        mission_seed in 0u64..1 << 32,
    ) {
        let site = FaultSite::Cell { row, col, stuck };
        let mission = CampaignConfig {
            cycles: 160,
            trials: 3,
            seed: mission_seed,
            write_fraction: 0.1,
        };
        let outcome = run_session(
            dictionary(),
            site,
            SpareBudget { rows: 1, cols: 1 },
            mission,
            mission_seed ^ 0xF1E1,
        );
        if outcome.diagnosis.detected() {
            // Localized: the ambiguity set must contain the truth, the
            // spare must cover it, and both re-verifications must pass.
            prop_assert!(outcome.contains_truth, "{site:?}: {:?}", outcome.diagnosis);
            prop_assert!(outcome.outcome.repaired(), "{site:?}: {:?}", outcome.outcome);
            prop_assert_eq!(outcome.post_repair_clean, Some(true), "{site:?}");
            prop_assert_eq!(outcome.mission_error_escapes, Some(0), "{site:?}");
            prop_assert_eq!(outcome.mission_detections, Some(0), "{site:?}");
            prop_assert!(outcome.fully_repaired());
        } else {
            // The only March-silent cells are parity-group cells stuck
            // at the shared background parity (even word width).
            let parity = background(MARCH_SEED, 8).count_ones() % 2 == 1;
            prop_assert!((32..36).contains(&col), "{site:?} silently undiagnosed");
            prop_assert_eq!(stuck, parity, "{site:?} silently undiagnosed");
        }
    }
}
