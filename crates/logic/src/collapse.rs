//! Structural fault collapsing.
//!
//! Classical equivalence rules shrink the stuck-at universe before
//! expensive campaigns:
//!
//! * AND/NAND gate: SA0 on any input ≡ SA0 (NAND: SA1) on the output;
//! * OR/NOR gate: SA1 on any input ≡ SA1 (NOR: SA0) on the output;
//! * buffer/inverter: input faults ≡ (possibly inverted) output faults.
//!
//! Because this crate models faults on *signals* (a fault on a gate input
//! is represented by the fault on its driving signal), input-fault
//! equivalence collapses across gates only when the driving signal has
//! **fan-out 1** — with fan-out, the driver's fault reaches other gates and
//! is not equivalent to the single gate's output fault. The collapser
//! honours that.

use crate::fault::{Fault, StuckAt};
use crate::netlist::{GateKind, Netlist, SignalId};

/// Compute fan-out counts for every signal.
fn fanout(netlist: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; netlist.num_signals()];
    for gate in netlist.gates() {
        for s in &gate.inputs {
            counts[s.index()] += 1;
        }
    }
    for s in netlist.primary_outputs() {
        counts[s.index()] += 1;
    }
    counts
}

/// A collapsed fault universe: representative faults plus the total size of
/// the uncollapsed universe they stand for.
#[derive(Debug, Clone)]
pub struct CollapsedUniverse {
    /// Representative faults (one per equivalence class).
    pub representatives: Vec<Fault>,
    /// Size of the full (uncollapsed) universe.
    pub full_size: usize,
}

impl CollapsedUniverse {
    /// Collapse ratio (`representatives / full`), the standard figure of
    /// merit.
    pub fn ratio(&self) -> f64 {
        self.representatives.len() as f64 / self.full_size as f64
    }
}

/// Collapse the single stuck-at universe of a netlist by structural
/// equivalence.
pub fn collapse(netlist: &Netlist) -> CollapsedUniverse {
    let full = crate::fault::fault_universe(netlist);
    let fan = fanout(netlist);
    let mut dominated = vec![[false; 2]; netlist.num_signals()];

    // Mark input-side faults equivalent to an output fault of the gate that
    // consumes them, when the driver has fan-out exactly 1.
    for (idx, gate) in netlist.gates().iter().enumerate() {
        let out = SignalId(idx as u32);
        let _ = out;
        let mark = |dominated: &mut Vec<[bool; 2]>, s: SignalId, stuck: StuckAt| {
            if fan[s.index()] == 1 {
                dominated[s.index()][matches!(stuck, StuckAt::One) as usize] = true;
            }
        };
        match gate.kind {
            GateKind::And2 | GateKind::AndN => {
                for &s in &gate.inputs {
                    mark(&mut dominated, s, StuckAt::Zero); // ≡ output SA0
                }
            }
            GateKind::Nand2 => {
                for &s in &gate.inputs {
                    mark(&mut dominated, s, StuckAt::Zero); // ≡ output SA1
                }
            }
            GateKind::Or2 | GateKind::OrN => {
                for &s in &gate.inputs {
                    mark(&mut dominated, s, StuckAt::One); // ≡ output SA1
                }
            }
            GateKind::Nor2 | GateKind::NorN => {
                for &s in &gate.inputs {
                    mark(&mut dominated, s, StuckAt::One); // ≡ output SA0
                }
            }
            GateKind::Buf => {
                for &s in &gate.inputs {
                    mark(&mut dominated, s, StuckAt::Zero);
                    mark(&mut dominated, s, StuckAt::One);
                }
            }
            GateKind::Inv => {
                for &s in &gate.inputs {
                    mark(&mut dominated, s, StuckAt::Zero); // ≡ output SA1
                    mark(&mut dominated, s, StuckAt::One); // ≡ output SA0
                }
            }
            // XOR-family and inputs/constants collapse nothing.
            _ => {}
        }
    }

    let representatives = full
        .iter()
        .copied()
        .filter(|f| !dominated[f.signal.index()][matches!(f.stuck, StuckAt::One) as usize])
        .collect::<Vec<_>>();
    CollapsedUniverse {
        representatives,
        full_size: full.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// Every representative set must remain *detection-complete*: a test
    /// set detecting all representatives detects the full universe.
    /// Verified here by exhaustive simulation on small circuits.
    fn detection_equivalent(netlist: &Netlist) {
        let collapsed = collapse(netlist);
        let n = netlist.primary_inputs().len();
        let full = crate::fault::fault_universe(netlist);
        // For every collapsed-away fault there must exist a representative
        // with the *same* detection set (equivalence, not just dominance).
        let detect_set = |f: Fault| -> Vec<u64> {
            (0..(1u64 << n))
                .filter(|&p| {
                    netlist.eval_word(p, Some(f)).outputs() != netlist.eval_word(p, None).outputs()
                })
                .collect()
        };
        let rep_sets: Vec<Vec<u64>> = collapsed
            .representatives
            .iter()
            .map(|&f| detect_set(f))
            .collect();
        for &f in &full {
            if collapsed.representatives.contains(&f) {
                continue;
            }
            let set = detect_set(f);
            assert!(
                rep_sets.contains(&set),
                "collapsed fault {f} has no equivalent representative"
            );
        }
    }

    #[test]
    fn and_chain_collapses_and_stays_complete() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let ab = nl.and2(a, b);
        let abc = nl.and2(ab, c);
        nl.expose(abc);
        let col = collapse(&nl);
        assert!(col.representatives.len() < col.full_size);
        detection_equivalent(&nl);
    }

    #[test]
    fn inverter_chain_collapses_fully() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let x = nl.inv(a);
        let y = nl.inv(x);
        nl.expose(y);
        let col = collapse(&nl);
        // a's two faults fold into x's, which fold into y's: only 2 remain.
        assert_eq!(col.representatives.len(), 2);
        detection_equivalent(&nl);
    }

    #[test]
    fn fanout_blocks_collapsing() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let x = nl.and2(a, b);
        let y = nl.or2(a, b); // a and b fan out to two gates
        nl.expose(x);
        nl.expose(y);
        let col = collapse(&nl);
        // No input may be collapsed: all 8 faults remain.
        assert_eq!(col.representatives.len(), col.full_size);
        detection_equivalent(&nl);
    }

    #[test]
    fn wide_and_tree_collapses_strongly() {
        // Fan-out-free internal nodes: every intermediate AND output folds
        // into the root's SA0 class chain.
        let mut nl = Netlist::new();
        let ins = nl.inputs(16);
        let root = nl.and_tree(&ins, 2);
        nl.expose(root);
        let col = collapse(&nl);
        assert!(
            col.ratio() < 0.6,
            "expected strong collapse, got {}",
            col.ratio()
        );
        // Equivalence check would be 2^16 patterns; use an 8-input tree.
        let mut nl8 = Netlist::new();
        let ins8 = nl8.inputs(8);
        let root8 = nl8.and_tree(&ins8, 2);
        nl8.expose(root8);
        detection_equivalent(&nl8);
    }

    #[test]
    fn single_level_decoder_does_not_collapse() {
        // Every literal fans out to many AND gates, so no input fault is
        // equivalent to any single gate-output fault: ratio must be 1.
        let mut nl = Netlist::new();
        let addr = nl.inputs(4);
        let inv: Vec<_> = addr.iter().map(|&a| nl.inv(a)).collect();
        let outs: Vec<_> = (0..16u64)
            .map(|v| {
                let lits: Vec<_> = (0..4)
                    .map(|i| if v >> i & 1 == 1 { addr[i] } else { inv[i] })
                    .collect();
                nl.and_n(&lits)
            })
            .collect();
        nl.expose_all(&outs);
        let col = collapse(&nl);
        assert_eq!(col.ratio(), 1.0);
        detection_equivalent(&nl);
    }
}
