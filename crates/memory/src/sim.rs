//! Detection-latency measurement: faulty design vs fault-free twin.
//!
//! Both RAMs receive the identical operation stream. Each cycle records
//! whether the faulty design delivered an *erroneous output* (read data or
//! parity bit differing from the twin) and whether any checker raised an
//! error indication. The TSC goal is met on a cycle when an error is
//! accompanied by an indication no later than itself.

use crate::backend::{compare_step, FaultSimBackend};
use crate::design::SelfCheckingRam;
use crate::workload::{Op, OpSource, Workload};

/// Outcome of one measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionOutcome {
    /// Cycles executed.
    pub cycles_run: u64,
    /// First cycle (0-based) on which the faulty design produced a read
    /// output differing from the twin.
    pub first_error: Option<u64>,
    /// First cycle on which any checker raised an indication.
    pub first_detection: Option<u64>,
}

impl DetectionOutcome {
    /// Fault detected within `c` cycles of **onset** — the paper's
    /// definition, where latency is counted from the first erroneous
    /// output, not from injection:
    ///
    /// * error at `e`, detection at `d` — within budget iff `d ≤ e + c`
    ///   (boundary included: "within `c` cycles" admits a latency of
    ///   exactly `c`);
    /// * detection but no erroneous output — trivially within budget for
    ///   any `c` (the checkers spoke before the fault ever corrupted an
    ///   output, the TSC ideal);
    /// * no detection — not within any budget.
    pub fn detected_within(&self, c: u64) -> bool {
        match (self.first_detection, self.first_error) {
            (Some(d), Some(e)) => d <= e.saturating_add(c),
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Did an erroneous output reach the system strictly before the first
    /// indication (the TSC-goal violation this scheme trades against cost)?
    pub fn error_escaped(&self) -> bool {
        match (self.first_error, self.first_detection) {
            (Some(e), Some(d)) => e < d,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Detection latency measured from the first error, when both exist.
    pub fn latency_from_error(&self) -> Option<u64> {
        match (self.first_error, self.first_detection) {
            (Some(e), Some(d)) if d >= e => Some(d - e),
            _ => None,
        }
    }
}

/// Run `cycles` operations from `workload` against any
/// [`FaultSimBackend`], recording first-error and first-detection cycles.
///
/// The backend must already be [`reset`](FaultSimBackend::reset) into its
/// faulted (or fault-free) state. Measurement stops at the first
/// detection: the error indication is latched, so later cycles carry no
/// information.
///
/// Any [`OpSource`] drives the measurement — a concrete [`Workload`] or a
/// stream fabricated by a [`crate::workload::WorkloadModel`]. The source
/// is consumed as fresh operations and may be advanced past `cycles_run`
/// when the backend batches (bursts draw their ops up front); construct a
/// new seeded stream per measurement rather than relying on where a
/// shared one left off.
pub fn measure_detection_on<B: FaultSimBackend + ?Sized, S: OpSource + ?Sized>(
    backend: &mut B,
    workload: &mut S,
    cycles: u64,
) -> DetectionOutcome {
    if backend.prefers_batching() {
        return measure_detection_batched(backend, workload, cycles);
    }
    let mut out = DetectionOutcome::default();
    for cycle in 0..cycles {
        let obs = backend.step(workload.next_op());
        if obs.erroneous.unwrap_or(false) && out.first_error.is_none() {
            out.first_error = Some(cycle);
        }
        if obs.detected() && out.first_detection.is_none() {
            out.first_detection = Some(cycle);
        }
        out.cycles_run = cycle + 1;
        if out.first_detection.is_some() {
            break; // latched error indication: measurement complete
        }
    }
    out
}

/// Batched variant for backends whose [`step_many`] is cheaper than
/// stepping (the gate backend's 64-lane sweeps): drive up to 64 cycles per
/// burst, then scan the observations in order so the outcome — including
/// the early stop at first detection — is identical to the serial loop.
///
/// [`step_many`]: FaultSimBackend::step_many
fn measure_detection_batched<B: FaultSimBackend + ?Sized, S: OpSource + ?Sized>(
    backend: &mut B,
    workload: &mut S,
    cycles: u64,
) -> DetectionOutcome {
    let mut out = DetectionOutcome::default();
    let mut cycle = 0u64;
    while cycle < cycles {
        let burst = (cycles - cycle).min(64) as usize;
        let ops: Vec<Op> = (0..burst).map(|_| workload.next_op()).collect();
        for obs in backend.step_many(&ops) {
            if obs.erroneous.unwrap_or(false) && out.first_error.is_none() {
                out.first_error = Some(cycle);
            }
            if obs.detected() && out.first_detection.is_none() {
                out.first_detection = Some(cycle);
            }
            cycle += 1;
            out.cycles_run = cycle;
            if out.first_detection.is_some() {
                return out;
            }
        }
    }
    out
}

/// Run `cycles` operations from `workload` against both designs.
///
/// The twin must be in the same pre-fault state as the faulty design
/// (callers typically clone after prefill, then inject). This is the
/// borrowed-pair convenience form of [`measure_detection_on`] over the
/// behavioural model.
pub fn measure_detection(
    faulty: &mut SelfCheckingRam,
    golden: &mut SelfCheckingRam,
    workload: &mut Workload,
    cycles: u64,
) -> DetectionOutcome {
    struct Pair<'a> {
        faulty: &'a mut SelfCheckingRam,
        golden: &'a mut SelfCheckingRam,
    }
    impl FaultSimBackend for Pair<'_> {
        fn name(&self) -> &'static str {
            "behavioral-pair"
        }
        fn config(&self) -> &crate::design::RamConfig {
            self.faulty.config()
        }
        fn supports(&self, scenario: &crate::fault::FaultScenario) -> bool {
            // The borrowed pair has no activation clock of its own: only
            // the classical injected-at-reset model is realisable.
            matches!(
                scenario.process,
                crate::fault::FaultProcess::Permanent { onset: 0 }
            )
        }
        fn reset(&mut self, scenario: Option<&crate::fault::FaultScenario>) {
            // The borrowed pair owns no pristine copy: callers prepared the
            // memory state; only the injected fault is resettable.
            self.faulty.clear_fault();
            if let Some(s) = scenario {
                assert!(
                    self.supports(s),
                    "the borrowed pair realises only permanent injected-at-reset faults"
                );
                self.faulty.inject(s.site);
            }
        }
        fn step(&mut self, op: Op) -> crate::backend::CycleObservation {
            compare_step(self.faulty, self.golden, op)
        }
    }
    measure_detection_on(&mut Pair { faulty, golden }, workload, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder_unit::DecoderFault;
    use crate::design::RamConfig;
    use crate::fault::FaultSite;
    use scm_area::RamOrganization;
    use scm_codes::{CodewordMap, MOutOfN};

    fn config() -> RamConfig {
        let org = RamOrganization::new(64, 8, 4);
        let code = MOutOfN::new(3, 5).unwrap();
        RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, 16).unwrap(),
            CodewordMap::mod_a(code, 9, 4).unwrap(),
        )
    }

    fn prefilled() -> SelfCheckingRam {
        let mut ram = SelfCheckingRam::new(config());
        for addr in 0..64u64 {
            ram.write(addr, addr.wrapping_mul(0x9E) & 0xFF);
        }
        ram
    }

    #[test]
    fn batched_measurement_identical_to_serial() {
        use crate::backend::{CycleObservation, GateLevelBackend};
        use crate::campaign::decoder_fault_universe;

        /// Delegating wrapper that opts out of batching, forcing the
        /// serial loop over the very same backend.
        struct Serial<'a>(&'a mut GateLevelBackend);
        impl FaultSimBackend for Serial<'_> {
            fn name(&self) -> &'static str {
                "gate-serial"
            }
            fn config(&self) -> &RamConfig {
                self.0.config()
            }
            fn supports(&self, scenario: &crate::fault::FaultScenario) -> bool {
                self.0.supports(scenario)
            }
            fn reset(&mut self, scenario: Option<&crate::fault::FaultScenario>) {
                self.0.reset(scenario)
            }
            fn step(&mut self, op: crate::workload::Op) -> CycleObservation {
                self.0.step(op)
            }
        }

        let mut gate = GateLevelBackend::try_new(&config()).unwrap();
        assert!(gate.prefers_batching());
        for fault in decoder_fault_universe(4) {
            let site = FaultSite::RowDecoder(fault);
            // Cycle counts straddling the 64-lane burst boundary.
            for cycles in [1u64, 63, 64, 65, 200] {
                gate.reset_site(Some(site));
                let mut w = Workload::uniform(64, 8, 17);
                let batched = measure_detection_on(&mut gate, &mut w, cycles);
                gate.reset_site(Some(site));
                let mut w = Workload::uniform(64, 8, 17);
                let serial = measure_detection_on(&mut Serial(&mut gate), &mut w, cycles);
                assert_eq!(batched, serial, "{site:?} over {cycles} cycles");
            }
        }
    }

    #[test]
    fn detected_within_counts_from_error_onset() {
        let out = |e: Option<u64>, d: Option<u64>| DetectionOutcome {
            cycles_run: 100,
            first_error: e,
            first_detection: d,
        };
        // Error at 5, budget c = 3: detection at 8 (= e + c) is the
        // boundary and counts as within; 9 does not.
        assert!(out(Some(5), Some(8)).detected_within(3));
        assert!(!out(Some(5), Some(9)).detected_within(3));
        // c = 0 demands same-cycle detection.
        assert!(out(Some(5), Some(5)).detected_within(0));
        assert!(!out(Some(5), Some(6)).detected_within(0));
        // Detection *before* the first error is within any budget —
        // previously this was (wrongly) judged against cycle 0.
        assert!(out(Some(50), Some(2)).detected_within(0));
        // Detection with no error at all: the TSC ideal, within budget.
        assert!(out(None, Some(99)).detected_within(0));
        // No detection: never within budget, erroneous or not.
        assert!(!out(Some(0), None).detected_within(1_000_000));
        assert!(!out(None, None).detected_within(1_000_000));
        // Saturation: a huge budget with a late error must not overflow.
        assert!(out(Some(u64::MAX - 1), Some(u64::MAX)).detected_within(u64::MAX));
    }

    #[test]
    fn fault_free_pair_never_flags() {
        let mut golden = prefilled();
        let mut faulty = golden.clone();
        let mut w = Workload::uniform(64, 8, 11);
        let out = measure_detection(&mut faulty, &mut golden, &mut w, 500);
        assert_eq!(out.first_error, None);
        assert_eq!(out.first_detection, None);
        assert_eq!(out.cycles_run, 500);
    }

    #[test]
    fn sa0_detected_with_zero_error_escape() {
        let mut golden = prefilled();
        let mut faulty = golden.clone();
        faulty.inject(FaultSite::RowDecoder(DecoderFault {
            bits: 4,
            offset: 0,
            value: 3,
            stuck_one: false,
        }));
        let mut w = Workload::uniform(64, 8, 5);
        let out = measure_detection(&mut faulty, &mut golden, &mut w, 10_000);
        assert!(out.first_detection.is_some(), "SA0 must eventually be hit");
        assert!(!out.error_escaped(), "SA0 errors are caught the same cycle");
    }

    #[test]
    fn undetectable_collision_never_flags_but_errs() {
        // Rows 1 and 10 share a codeword under a = 9 with 16 rows (the
        // completion fix gives row 9 the spare word): the SA1 on row-1's
        // line escapes exactly while only row 10 is addressed.
        let golden = prefilled();
        let mut faulty = golden.clone();
        faulty.inject(FaultSite::RowDecoder(DecoderFault {
            bits: 4,
            offset: 0,
            value: 1,
            stuck_one: true,
        }));
        let mut out = DetectionOutcome::default();
        for cycle in 0..50u64 {
            let addr = 10 * 4; // row 10, column 0 — collides with row 1
            let f = faulty.read(addr);
            let g = golden.read(addr);
            if f.data != g.data && out.first_error.is_none() {
                out.first_error = Some(cycle);
            }
            if f.verdict.any_error() {
                out.first_detection = Some(cycle);
                break;
            }
        }
        assert_eq!(
            out.first_detection, None,
            "colliding rows are the blind spot"
        );
    }

    #[test]
    fn detection_latency_statistics_reasonable() {
        // SA1 on a line of the 4-bit row block with a = 9: per-cycle escape
        // ≈ 1/8 per the paper; detection should be fast under uniform
        // addressing.
        let mut latencies = Vec::new();
        for seed in 0..20u64 {
            let mut golden = prefilled();
            let mut faulty = golden.clone();
            faulty.inject(FaultSite::RowDecoder(DecoderFault {
                bits: 4,
                offset: 0,
                value: 0,
                stuck_one: true,
            }));
            let mut w = Workload::uniform(64, 8, seed);
            let out = measure_detection(&mut faulty, &mut golden, &mut w, 10_000);
            let d = out
                .first_detection
                .expect("should detect under uniform addressing");
            latencies.push(d);
        }
        let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
        // Detection probability per cycle ≈ 14/16 (a random row differs from
        // row 0 mod 9 in 14 of 16 cases): mean ≈ 1.14 cycles. Allow slack.
        assert!(mean < 5.0, "mean latency {mean} suspiciously high");
    }
}
