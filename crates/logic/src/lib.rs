//! Gate-level combinational netlist substrate.
//!
//! The paper's analysis (Section III.2) is phrased at the single stuck-at
//! gate level: decoders are trees of 2-input AND gates, the ROM encoder is a
//! NOR matrix, checkers are small gate networks. This crate provides exactly
//! that substrate:
//!
//! * [`netlist::Netlist`] — a growable combinational netlist whose signals
//!   are created in topological order (every gate may only reference
//!   already-created signals), so evaluation is a single forward sweep.
//! * [`fault::Fault`] — the classical single stuck-at fault model
//!   (stuck-at-0 / stuck-at-1 on any signal).
//! * [`sim`] — single-pattern evaluation with an optional injected fault.
//! * [`parallel`] — 64-way bit-parallel evaluation: one `u64` lane per
//!   signal carries 64 input patterns at once, the workhorse for Monte-Carlo
//!   fault campaigns.
//! * [`stats`] — gate counts and gate-equivalent area figures consumed by
//!   the area model.
//! * [`collapse`] — structural stuck-at fault collapsing (equivalence
//!   classes across fan-out-free gate inputs) to shrink campaign universes.
//!
//! # Example
//!
//! ```
//! use scm_logic::netlist::Netlist;
//! use scm_logic::fault::Fault;
//!
//! // f = a AND (NOT b)
//! let mut nl = Netlist::new();
//! let a = nl.input();
//! let b = nl.input();
//! let nb = nl.inv(b);
//! let f = nl.and2(a, nb);
//! nl.expose(f);
//!
//! assert_eq!(nl.eval(&[true, false]).outputs(), vec![true]);
//! // Stuck-at-0 on the AND output masks everything:
//! let faulty = nl.eval_with_fault(&[true, false], Some(Fault::stuck_at_0(f)));
//! assert_eq!(faulty.outputs(), vec![false]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collapse;
pub mod coverage;
pub mod export;
pub mod fault;
pub mod netlist;
pub mod parallel;
pub mod sim;
pub mod stats;

pub use fault::{Fault, StuckAt};
pub use netlist::{GateKind, Netlist, SignalId};
pub use sim::Evaluation;
