//! Fleet telemetry: integer accumulators and derived SLO verdicts.
//!
//! Everything the driver accumulates is a `u64` counter so partial
//! results **commute and merge exactly** — the property that makes the
//! final report bit-identical at any thread count and across a
//! checkpoint/resume boundary. Floating-point rates (FIT, fractions,
//! forecasts) are derived only at render time from the settled integer
//! totals.

use crate::spec::{CohortSpec, FleetSpec};

/// Integer accumulators for one cohort. Every field is a plain sum over
/// devices, so merging partial telemetry in any grouping yields the
/// same totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CohortTelemetry {
    /// Devices simulated.
    pub devices: u64,
    /// SEU strike scenarios simulated across those devices.
    pub strikes: u64,
    /// Strikes detected within the mission horizon.
    pub detected: u64,
    /// Strikes never detected within the horizon.
    pub undetected: u64,
    /// Strikes whose erroneous word escaped to an output before (or
    /// without) detection — the SDC events the FIT SLO bounds.
    pub escapes: u64,
    /// Sum of detection cycles over detected strikes (global clock).
    pub detection_cycle_sum: u64,
    /// Sum of `detection − onset` latencies over detected strikes.
    pub onset_latency_sum: u64,
    /// Sum of Aupy-style lost work over all strikes.
    pub lost_work_sum: u64,
    /// Devices drawn with a manufacturing (hard) defect.
    pub hard_devices: u64,
    /// Triage sessions classed transient (no spare burned).
    pub triage_transient: u64,
    /// Triage sessions whose diagnosing March stayed clean.
    pub triage_silent: u64,
    /// Triage sessions confirmed permanent and fully repaired.
    pub triage_repaired: u64,
    /// Triage sessions confirmed permanent but not repaired (out of
    /// spares or structurally unrepairable).
    pub triage_unrepaired: u64,
    /// Spare rows committed by repairs.
    pub spare_rows_used: u64,
    /// Spare columns committed by repairs.
    pub spare_cols_used: u64,
}

impl CohortTelemetry {
    /// Fold another partial into this one (field-wise sum).
    pub fn merge(&mut self, other: &CohortTelemetry) {
        self.devices += other.devices;
        self.strikes += other.strikes;
        self.detected += other.detected;
        self.undetected += other.undetected;
        self.escapes += other.escapes;
        self.detection_cycle_sum += other.detection_cycle_sum;
        self.onset_latency_sum += other.onset_latency_sum;
        self.lost_work_sum += other.lost_work_sum;
        self.hard_devices += other.hard_devices;
        self.triage_transient += other.triage_transient;
        self.triage_silent += other.triage_silent;
        self.triage_repaired += other.triage_repaired;
        self.triage_unrepaired += other.triage_unrepaired;
        self.spare_rows_used += other.spare_rows_used;
        self.spare_cols_used += other.spare_cols_used;
    }

    /// The fields in checkpoint-line order, paired with stable names.
    pub fn fields(&self) -> [(&'static str, u64); 15] {
        [
            ("devices", self.devices),
            ("strikes", self.strikes),
            ("detected", self.detected),
            ("undetected", self.undetected),
            ("escapes", self.escapes),
            ("detection_cycle_sum", self.detection_cycle_sum),
            ("onset_latency_sum", self.onset_latency_sum),
            ("lost_work_sum", self.lost_work_sum),
            ("hard_devices", self.hard_devices),
            ("triage_transient", self.triage_transient),
            ("triage_silent", self.triage_silent),
            ("triage_repaired", self.triage_repaired),
            ("triage_unrepaired", self.triage_unrepaired),
            ("spare_rows_used", self.spare_rows_used),
            ("spare_cols_used", self.spare_cols_used),
        ]
    }

    /// Fold the accumulators into a metrics registry as
    /// `fleet.<cohort>.<field>` counters. Counter addition commutes, so
    /// folding per-cohort telemetry in any order yields the same
    /// registry — the same contract [`merge`](Self::merge) gives the
    /// raw accumulators.
    pub fn fold_metrics(&self, cohort: &str, metrics: &mut scm_obs::Metrics) {
        for (name, value) in self.fields() {
            metrics.add(&format!("fleet.{cohort}.{name}"), value);
        }
    }

    /// Rebuild from values in [`fields`](Self::fields) order.
    pub fn from_values(values: &[u64; 15]) -> CohortTelemetry {
        CohortTelemetry {
            devices: values[0],
            strikes: values[1],
            detected: values[2],
            undetected: values[3],
            escapes: values[4],
            detection_cycle_sum: values[5],
            onset_latency_sum: values[6],
            lost_work_sum: values[7],
            hard_devices: values[8],
            triage_transient: values[9],
            triage_silent: values[10],
            triage_repaired: values[11],
            triage_unrepaired: values[12],
            spare_rows_used: values[13],
            spare_cols_used: values[14],
        }
    }
}

/// One cohort's derived metrics and SLO verdicts (render-time floats
/// over settled integer totals).
///
/// Every rate whose denominator can be zero — a cohort with no
/// devices, no strikes, or no detections — is an `Option`, `None`
/// meaning "nothing observed". Renderers print those as `-`/`null`
/// rather than a fabricated `0.0`, and the SLO verdicts pass vacuously
/// (a rate that was never observed cannot violate a bound).
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// Cohort name.
    pub name: String,
    /// The raw accumulators.
    pub telemetry: CohortTelemetry,
    /// Simulated device-hours (`devices · horizon / cycles_per_hour`).
    pub device_hours: f64,
    /// SDC escape rate in FIT (escapes per 10⁹ device-hours;
    /// `None` = zero device-hours).
    pub sdc_fit: Option<f64>,
    /// Detected fraction of strikes (`None` = no strikes).
    pub detect_fraction: Option<f64>,
    /// Escaped fraction of strikes (`None` = no strikes).
    pub escape_fraction: Option<f64>,
    /// Mean detection cycle over detected strikes
    /// (`None` = no detections).
    pub mean_detection_cycle: Option<f64>,
    /// Mean lost work per strike (`None` = no strikes).
    pub mean_lost_work: Option<f64>,
    /// Spares committed per device-hour, rows + columns
    /// (`None` = zero device-hours).
    pub spare_burn_rate: Option<f64>,
    /// Forecast hours until the cohort's pooled spare budget is
    /// exhausted at the observed burn rate (`None` = no burn observed).
    pub spare_exhaustion_hours: Option<f64>,
    /// SDC-FIT SLO verdict (`rate ≤ slo_max_sdc_fit`; vacuous pass
    /// when no device-hours were simulated).
    pub sdc_slo_pass: bool,
    /// Detection-fraction SLO verdict
    /// (`detect_fraction ≥ slo_min_detect_ppm`; vacuous pass when no
    /// strikes were simulated).
    pub detect_slo_pass: bool,
}

impl CohortReport {
    /// Derive a cohort's report from its spec and settled telemetry.
    pub fn derive(spec: &FleetSpec, cohort: &CohortSpec, telemetry: CohortTelemetry) -> Self {
        let device_hours =
            telemetry.devices as f64 * cohort.horizon as f64 / spec.cycles_per_hour as f64;
        let sdc_fit = (device_hours > 0.0).then(|| telemetry.escapes as f64 * 1e9 / device_hours);
        let strikes = (telemetry.strikes > 0).then_some(telemetry.strikes as f64);
        let detect_fraction = strikes.map(|s| telemetry.detected as f64 / s);
        let escape_fraction = strikes.map(|s| telemetry.escapes as f64 / s);
        let spares_used = telemetry.spare_rows_used + telemetry.spare_cols_used;
        let spare_burn_rate = (device_hours > 0.0).then(|| spares_used as f64 / device_hours);
        let budget = telemetry.devices * (cohort.spare_rows as u64 + cohort.spare_cols as u64);
        let spare_exhaustion_hours = spare_burn_rate
            .filter(|&rate| rate > 0.0)
            .map(|rate| budget.saturating_sub(spares_used) as f64 / rate);
        CohortReport {
            name: cohort.name.clone(),
            telemetry,
            device_hours,
            sdc_fit,
            detect_fraction,
            escape_fraction,
            mean_detection_cycle: (telemetry.detected > 0)
                .then(|| telemetry.detection_cycle_sum as f64 / telemetry.detected as f64),
            mean_lost_work: strikes.map(|s| telemetry.lost_work_sum as f64 / s),
            spare_burn_rate,
            spare_exhaustion_hours,
            sdc_slo_pass: sdc_fit.is_none_or(|fit| fit <= cohort.slo_max_sdc_fit as f64),
            detect_slo_pass: detect_fraction
                .is_none_or(|f| f * 1e6 >= cohort.slo_min_detect_ppm as f64),
        }
    }

    /// Did the cohort meet every SLO?
    pub fn slo_pass(&self) -> bool {
        self.sdc_slo_pass && self.detect_slo_pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_field_wise_and_commutative() {
        let mut a = CohortTelemetry {
            devices: 2,
            strikes: 8,
            detected: 5,
            escapes: 1,
            ..CohortTelemetry::default()
        };
        let b = CohortTelemetry {
            devices: 3,
            strikes: 12,
            detected: 9,
            spare_rows_used: 1,
            ..CohortTelemetry::default()
        };
        let mut ba = b;
        ba.merge(&a);
        a.merge(&b);
        assert_eq!(a, ba);
        assert_eq!(a.devices, 5);
        assert_eq!(a.strikes, 20);
        assert_eq!(a.detected, 14);
        assert_eq!(a.spare_rows_used, 1);
    }

    #[test]
    fn fields_round_trip() {
        let t = CohortTelemetry {
            devices: 7,
            strikes: 4,
            detected: 3,
            undetected: 1,
            escapes: 2,
            detection_cycle_sum: 100,
            onset_latency_sum: 40,
            lost_work_sum: 900,
            hard_devices: 1,
            triage_transient: 1,
            triage_silent: 0,
            triage_repaired: 1,
            triage_unrepaired: 0,
            spare_rows_used: 1,
            spare_cols_used: 0,
        };
        let values: Vec<u64> = t.fields().iter().map(|&(_, v)| v).collect();
        let rebuilt = CohortTelemetry::from_values(&values.try_into().unwrap());
        assert_eq!(t, rebuilt);
    }

    #[test]
    fn derived_metrics_and_verdicts() {
        let spec = FleetSpec::preset("small").unwrap();
        let cohort = &spec.cohorts[0]; // 400-cycle horizon, 3600 cycles/hour
        let telemetry = CohortTelemetry {
            devices: 9,
            strikes: 36,
            detected: 30,
            undetected: 6,
            escapes: 2,
            spare_rows_used: 1,
            ..CohortTelemetry::default()
        };
        let report = CohortReport::derive(&spec, cohort, telemetry);
        assert!((report.device_hours - 1.0).abs() < 1e-12);
        assert!((report.sdc_fit.unwrap() - 2e9).abs() < 1.0);
        assert!((report.detect_fraction.unwrap() - 30.0 / 36.0).abs() < 1e-12);
        // 9 devices × 2 spares, 1 burned in 1 device-hour → 17 h left.
        assert!((report.spare_exhaustion_hours.unwrap() - 17.0).abs() < 1e-9);
        assert!(report.sdc_slo_pass, "2e9 FIT under the 4e9 edge SLO");
        assert!(report.detect_slo_pass);
        // An escape-free cohort forecasts no exhaustion.
        let clean = CohortReport::derive(&spec, cohort, CohortTelemetry::default());
        assert_eq!(clean.spare_exhaustion_hours, None);
        assert!(clean.sdc_slo_pass);
    }

    #[test]
    fn zero_denominators_yield_none_not_fabricated_rates() {
        let spec = FleetSpec::preset("small").unwrap();
        let cohort = &spec.cohorts[0];
        // A cohort that never ran: every rate is unobserved, every SLO
        // passes vacuously.
        let empty = CohortReport::derive(&spec, cohort, CohortTelemetry::default());
        assert_eq!(empty.device_hours, 0.0);
        assert_eq!(empty.sdc_fit, None);
        assert_eq!(empty.detect_fraction, None);
        assert_eq!(empty.escape_fraction, None);
        assert_eq!(empty.mean_detection_cycle, None);
        assert_eq!(empty.mean_lost_work, None);
        assert_eq!(empty.spare_burn_rate, None);
        assert_eq!(empty.spare_exhaustion_hours, None);
        assert!(empty.slo_pass(), "unobserved rates cannot violate an SLO");
        // Devices ran but drew no strikes: per-strike rates stay
        // unobserved while device-hour rates settle.
        let quiet = CohortReport::derive(
            &spec,
            cohort,
            CohortTelemetry {
                devices: 4,
                ..CohortTelemetry::default()
            },
        );
        assert!(quiet.device_hours > 0.0);
        assert_eq!(quiet.sdc_fit, Some(0.0));
        assert_eq!(quiet.detect_fraction, None);
        assert_eq!(quiet.mean_lost_work, None);
        assert_eq!(quiet.spare_burn_rate, Some(0.0));
        assert!(quiet.slo_pass());
        // Strikes with zero detections: fractions settle, the
        // per-detection mean stays unobserved.
        let undetected = CohortReport::derive(
            &spec,
            cohort,
            CohortTelemetry {
                devices: 4,
                strikes: 8,
                undetected: 8,
                ..CohortTelemetry::default()
            },
        );
        assert_eq!(undetected.detect_fraction, Some(0.0));
        assert_eq!(undetected.mean_detection_cycle, None);
        assert!(!undetected.detect_slo_pass, "0% detection misses the SLO");
    }

    #[test]
    fn fold_metrics_mirrors_the_field_table() {
        let t = CohortTelemetry {
            devices: 7,
            strikes: 4,
            detected: 3,
            spare_rows_used: 1,
            ..CohortTelemetry::default()
        };
        let mut metrics = scm_obs::Metrics::new();
        t.fold_metrics("edge", &mut metrics);
        assert_eq!(metrics.counter("fleet.edge.devices"), 7);
        assert_eq!(metrics.counter("fleet.edge.strikes"), 4);
        assert_eq!(metrics.counter("fleet.edge.detected"), 3);
        assert_eq!(metrics.counter("fleet.edge.spare_rows_used"), 1);
        // Zero fields are still present: the registry mirrors the
        // checkpoint field table one-for-one.
        assert_eq!(metrics.counter("fleet.edge.escapes"), 0);
        // Folding twice doubles every counter (plain addition).
        t.fold_metrics("edge", &mut metrics);
        assert_eq!(metrics.counter("fleet.edge.devices"), 14);
    }
}
