//! Netlist export: structural Verilog and Graphviz DOT.
//!
//! The generated decoders, NOR matrices and checkers are real hardware
//! structures; exporting them lets users drop the scheme into an actual
//! flow (synthesis sanity checks, visualisation, equivalence checking
//! against an RTL rewrite). The Verilog writer emits a self-contained
//! structural module using only `not`/`buf`/`and`/`or`/`nand`/`nor`/`xor`/
//! `xnor` primitives, so any tool can ingest it.

use crate::netlist::{GateKind, Netlist, SignalId};
use std::fmt::Write;

fn wire(s: SignalId) -> String {
    format!("n{}", s.index())
}

/// Emit a structural Verilog module for the netlist.
///
/// Primary inputs become module inputs `pi0, pi1, …` (in creation order),
/// primary outputs become `po0, po1, …` (in exposure order).
pub fn to_verilog(netlist: &Netlist, module_name: &str) -> String {
    let mut v = String::new();
    let n_in = netlist.primary_inputs().len();
    let n_out = netlist.primary_outputs().len();
    let ins: Vec<String> = (0..n_in).map(|k| format!("pi{k}")).collect();
    let outs: Vec<String> = (0..n_out).map(|k| format!("po{k}")).collect();
    let ports: Vec<String> = ins.iter().chain(outs.iter()).cloned().collect();
    writeln!(v, "module {module_name} ({});", ports.join(", ")).unwrap();
    for i in &ins {
        writeln!(v, "  input {i};").unwrap();
    }
    for o in &outs {
        writeln!(v, "  output {o};").unwrap();
    }

    // Internal wires.
    for s in netlist.signal_ids() {
        writeln!(v, "  wire {};", wire(s)).unwrap();
    }

    // Tie primary inputs to their nets.
    let mut next_input = 0usize;
    for (idx, gate) in netlist.gates().iter().enumerate() {
        let out = wire(SignalId(idx as u32));
        let args = |gate: &crate::netlist::Gate| -> String {
            gate.inputs
                .iter()
                .map(|&s| wire(s))
                .collect::<Vec<_>>()
                .join(", ")
        };
        match gate.kind {
            GateKind::Input => {
                writeln!(v, "  buf g{idx} ({out}, pi{next_input});").unwrap();
                next_input += 1;
            }
            GateKind::Const(c) => {
                writeln!(v, "  assign {out} = 1'b{};", c as u8).unwrap();
            }
            GateKind::Buf => writeln!(v, "  buf g{idx} ({out}, {});", args(gate)).unwrap(),
            GateKind::Inv => writeln!(v, "  not g{idx} ({out}, {});", args(gate)).unwrap(),
            GateKind::And2 | GateKind::AndN => {
                writeln!(v, "  and g{idx} ({out}, {});", args(gate)).unwrap()
            }
            GateKind::Or2 | GateKind::OrN => {
                writeln!(v, "  or g{idx} ({out}, {});", args(gate)).unwrap()
            }
            GateKind::Nand2 => writeln!(v, "  nand g{idx} ({out}, {});", args(gate)).unwrap(),
            GateKind::Nor2 | GateKind::NorN => {
                writeln!(v, "  nor g{idx} ({out}, {});", args(gate)).unwrap()
            }
            GateKind::Xor2 => writeln!(v, "  xor g{idx} ({out}, {});", args(gate)).unwrap(),
            GateKind::Xnor2 => writeln!(v, "  xnor g{idx} ({out}, {});", args(gate)).unwrap(),
        }
    }

    // Tie primary outputs.
    for (k, &s) in netlist.primary_outputs().iter().enumerate() {
        writeln!(v, "  buf o{k} (po{k}, {});", wire(s)).unwrap();
    }
    writeln!(v, "endmodule").unwrap();
    v
}

/// Emit a Graphviz DOT digraph of the netlist (gates as nodes, nets as
/// edges), suitable for `dot -Tsvg`.
pub fn to_dot(netlist: &Netlist, graph_name: &str) -> String {
    let mut d = String::new();
    writeln!(d, "digraph {graph_name} {{").unwrap();
    writeln!(d, "  rankdir=LR;").unwrap();
    for (idx, gate) in netlist.gates().iter().enumerate() {
        let shape = match gate.kind {
            GateKind::Input => "triangle",
            GateKind::Const(_) => "plaintext",
            _ => "box",
        };
        writeln!(
            d,
            "  n{idx} [label=\"{}#{idx}\", shape={shape}];",
            gate.kind.mnemonic()
        )
        .unwrap();
        for s in &gate.inputs {
            writeln!(d, "  n{} -> n{idx};", s.index()).unwrap();
        }
    }
    for (k, s) in netlist.primary_outputs().iter().enumerate() {
        writeln!(d, "  po{k} [shape=doublecircle, label=\"po{k}\"];").unwrap();
        writeln!(d, "  n{} -> po{k};", s.index()).unwrap();
    }
    writeln!(d, "}}").unwrap();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    fn sample() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.constant(true);
        let x = nl.xor2(a, b);
        let w = nl.nor_n(&[a, b, x]);
        let y = nl.and_n(&[x, w, c]);
        nl.expose(y);
        nl
    }

    #[test]
    fn verilog_is_structurally_complete() {
        let v = to_verilog(&sample(), "sample");
        assert!(v.starts_with("module sample"));
        assert!(v.contains("input pi0;"));
        assert!(v.contains("input pi1;"));
        assert!(v.contains("output po0;"));
        assert!(v.contains("xor"));
        assert!(v.contains("nor"));
        assert!(v.contains("assign n2 = 1'b1;"));
        assert!(v.trim_end().ends_with("endmodule"));
        // One gate instance per netlist gate + output ties.
        let instances = v.matches("g").count();
        assert!(instances >= 6);
    }

    #[test]
    fn dot_mentions_every_gate_and_edge() {
        let nl = sample();
        let d = to_dot(&nl, "g");
        assert!(d.starts_with("digraph g {"));
        for idx in 0..nl.num_signals() {
            assert!(
                d.contains(&format!("n{idx} [label=")),
                "missing node n{idx}"
            );
        }
        assert!(d.contains("-> po0;"));
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn decoder_exports_without_panic() {
        // A realistic structure: 6-bit decoder netlist → both formats.
        let mut nl = Netlist::new();
        let addr = nl.inputs(6);
        let inv: Vec<_> = addr.iter().map(|&a| nl.inv(a)).collect();
        for v in 0..64u64 {
            let lits: Vec<_> = (0..6)
                .map(|i| if v >> i & 1 == 1 { addr[i] } else { inv[i] })
                .collect();
            let line = nl.and_n(&lits);
            nl.expose(line);
        }
        let verilog = to_verilog(&nl, "decoder6");
        assert!(verilog.matches("and g").count() == 64);
        let dot = to_dot(&nl, "decoder6");
        assert!(dot.len() > 1000);
    }
}
