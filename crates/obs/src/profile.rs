//! Phase-scoped wall-clock profiler — explicitly **nondeterministic**.
//!
//! Everything else in this crate is a pure function of the simulation
//! seed; wall-clock timings are not, so they live behind a hard
//! separation: every rendered line starts with the `profile:` prefix,
//! and fixtures/CI diffs filter those lines exactly like the existing
//! `memo:` line (`grep -v '^profile:'`). Nothing in the trace or the
//! metrics registry ever depends on a profiler reading.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Collects named wall-clock phase spans. Disabled profilers skip the
/// clock reads entirely.
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    enabled: bool,
    spans: Vec<(String, Duration)>,
}

impl Profiler {
    /// A profiler; when `enabled` is false every call is a no-op.
    pub fn new(enabled: bool) -> Profiler {
        Profiler {
            enabled,
            spans: Vec::new(),
        }
    }

    /// Is the profiler recording?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Time `f` as phase `name` and return its result.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let result = f();
        self.spans.push((name.to_owned(), start.elapsed()));
        result
    }

    /// Record an externally measured span.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        if self.enabled {
            self.spans.push((name.to_owned(), elapsed));
        }
    }

    /// Recorded `(phase, duration)` spans, in recording order.
    pub fn spans(&self) -> &[(String, Duration)] {
        &self.spans
    }

    /// One `profile:`-prefixed line per span, in recording order, plus
    /// a total line. Empty string when disabled or nothing recorded —
    /// callers can always print the result verbatim.
    pub fn render(&self) -> String {
        if !self.enabled || self.spans.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let mut total = Duration::ZERO;
        for (name, elapsed) in &self.spans {
            total += *elapsed;
            let _ = writeln!(out, "profile: phase={name} wall_us={}", elapsed.as_micros());
        }
        let _ = writeln!(out, "profile: phase=total wall_us={}", total.as_micros());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new(false);
        let v = p.time("phase-a", || 41 + 1);
        assert_eq!(v, 42);
        p.record("phase-b", Duration::from_millis(5));
        assert!(p.spans().is_empty());
        assert_eq!(p.render(), "");
    }

    #[test]
    fn enabled_profiler_renders_prefixed_lines() {
        let mut p = Profiler::new(true);
        p.time("fan-out", || ());
        p.record("dictionary-build", Duration::from_micros(250));
        let text = p.render();
        for line in text.lines() {
            assert!(line.starts_with("profile: "), "unprefixed line: {line}");
        }
        assert!(text.contains("phase=fan-out"));
        assert!(text.contains("phase=dictionary-build wall_us=250"));
        assert!(text.contains("phase=total"));
    }
}
