//! Detection-latency measurement: faulty design vs fault-free twin.
//!
//! Both RAMs receive the identical operation stream. Each cycle records
//! whether the faulty design delivered an *erroneous output* (read data or
//! parity bit differing from the twin) and whether any checker raised an
//! error indication. The TSC goal is met on a cycle when an error is
//! accompanied by an indication no later than itself.

use crate::design::SelfCheckingRam;
use crate::workload::{Op, Workload};

/// Outcome of one measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionOutcome {
    /// Cycles executed.
    pub cycles_run: u64,
    /// First cycle (0-based) on which the faulty design produced a read
    /// output differing from the twin.
    pub first_error: Option<u64>,
    /// First cycle on which any checker raised an indication.
    pub first_detection: Option<u64>,
}

impl DetectionOutcome {
    /// Fault detected within `c` cycles of onset?
    pub fn detected_within(&self, c: u64) -> bool {
        self.first_detection.is_some_and(|d| d < c)
    }

    /// Did an erroneous output reach the system strictly before the first
    /// indication (the TSC-goal violation this scheme trades against cost)?
    pub fn error_escaped(&self) -> bool {
        match (self.first_error, self.first_detection) {
            (Some(e), Some(d)) => e < d,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Detection latency measured from the first error, when both exist.
    pub fn latency_from_error(&self) -> Option<u64> {
        match (self.first_error, self.first_detection) {
            (Some(e), Some(d)) if d >= e => Some(d - e),
            _ => None,
        }
    }
}

/// Run `cycles` operations from `workload` against both designs.
///
/// The twin must be in the same pre-fault state as the faulty design
/// (callers typically clone after prefill, then inject).
pub fn measure_detection(
    faulty: &mut SelfCheckingRam,
    golden: &mut SelfCheckingRam,
    workload: &mut Workload,
    cycles: u64,
) -> DetectionOutcome {
    let mut out = DetectionOutcome::default();
    for cycle in 0..cycles {
        let op = workload.next_op();
        let (erroneous, detected) = match op {
            Op::Read(addr) => {
                let f = faulty.read(addr);
                let g = golden.read(addr);
                (
                    f.data != g.data || f.parity_bit != g.parity_bit,
                    f.verdict.any_error(),
                )
            }
            Op::Write(addr, value) => {
                let fv = faulty.write(addr, value);
                let _ = golden.write(addr, value);
                // A write delivers no data to the system; only the checkers
                // speak.
                (false, fv.any_error())
            }
        };
        if erroneous && out.first_error.is_none() {
            out.first_error = Some(cycle);
        }
        if detected && out.first_detection.is_none() {
            out.first_detection = Some(cycle);
        }
        out.cycles_run = cycle + 1;
        if out.first_detection.is_some() {
            break; // latched error indication: measurement complete
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder_unit::DecoderFault;
    use crate::design::RamConfig;
    use crate::fault::FaultSite;
    use scm_area::RamOrganization;
    use scm_codes::{CodewordMap, MOutOfN};

    fn config() -> RamConfig {
        let org = RamOrganization::new(64, 8, 4);
        let code = MOutOfN::new(3, 5).unwrap();
        RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, 16).unwrap(),
            CodewordMap::mod_a(code, 9, 4).unwrap(),
        )
    }

    fn prefilled() -> SelfCheckingRam {
        let mut ram = SelfCheckingRam::new(config());
        for addr in 0..64u64 {
            ram.write(addr, addr.wrapping_mul(0x9E) & 0xFF);
        }
        ram
    }

    #[test]
    fn fault_free_pair_never_flags() {
        let mut golden = prefilled();
        let mut faulty = golden.clone();
        let mut w = Workload::uniform(64, 8, 11);
        let out = measure_detection(&mut faulty, &mut golden, &mut w, 500);
        assert_eq!(out.first_error, None);
        assert_eq!(out.first_detection, None);
        assert_eq!(out.cycles_run, 500);
    }

    #[test]
    fn sa0_detected_with_zero_error_escape() {
        let mut golden = prefilled();
        let mut faulty = golden.clone();
        faulty.inject(FaultSite::RowDecoder(DecoderFault {
            bits: 4,
            offset: 0,
            value: 3,
            stuck_one: false,
        }));
        let mut w = Workload::uniform(64, 8, 5);
        let out = measure_detection(&mut faulty, &mut golden, &mut w, 10_000);
        assert!(out.first_detection.is_some(), "SA0 must eventually be hit");
        assert!(!out.error_escaped(), "SA0 errors are caught the same cycle");
    }

    #[test]
    fn undetectable_collision_never_flags_but_errs() {
        // Rows 1 and 10 share a codeword under a = 9 with 16 rows (the
        // completion fix gives row 9 the spare word): the SA1 on row-1's
        // line escapes exactly while only row 10 is addressed.
        let golden = prefilled();
        let mut faulty = golden.clone();
        faulty.inject(FaultSite::RowDecoder(DecoderFault {
            bits: 4,
            offset: 0,
            value: 1,
            stuck_one: true,
        }));
        let mut out = DetectionOutcome::default();
        for cycle in 0..50u64 {
            let addr = 10 * 4; // row 10, column 0 — collides with row 1
            let f = faulty.read(addr);
            let g = golden.read(addr);
            if f.data != g.data && out.first_error.is_none() {
                out.first_error = Some(cycle);
            }
            if f.verdict.any_error() {
                out.first_detection = Some(cycle);
                break;
            }
        }
        assert_eq!(out.first_detection, None, "colliding rows are the blind spot");
    }

    #[test]
    fn detection_latency_statistics_reasonable() {
        // SA1 on a line of the 4-bit row block with a = 9: per-cycle escape
        // ≈ 1/8 per the paper; detection should be fast under uniform
        // addressing.
        let mut latencies = Vec::new();
        for seed in 0..20u64 {
            let mut golden = prefilled();
            let mut faulty = golden.clone();
            faulty.inject(FaultSite::RowDecoder(DecoderFault {
                bits: 4,
                offset: 0,
                value: 0,
                stuck_one: true,
            }));
            let mut w = Workload::uniform(64, 8, seed);
            let out = measure_detection(&mut faulty, &mut golden, &mut w, 10_000);
            let d = out.first_detection.expect("should detect under uniform addressing");
            latencies.push(d);
        }
        let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
        // Detection probability per cycle ≈ 14/16 (a random row differs from
        // row 0 mod 9 in 14 of 16 cases): mean ≈ 1.14 cycles. Allow slack.
        assert!(mean < 5.0, "mean latency {mean} suspiciously high");
    }
}
