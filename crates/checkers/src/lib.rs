//! Self-checking checkers producing two-rail error indications.
//!
//! Every encoded signal group in the self-checking memory is verified by a
//! checker whose output is a 1-out-of-2 (two-rail) pair: complementary rails
//! mean "no error", equal rails raise the error indication (paper, Figure 1).
//! This crate provides the four checkers the design needs, each with a fast
//! behavioural model and a gate-level netlist builder for fault-injection
//! campaigns:
//!
//! * [`two_rail_checker`] — the classical two-rail checker cell and tree
//!   that compresses many pairs into one (totally self-checking).
//! * [`parity_checker`] — dual-XOR-tree parity checker for the data path.
//! * [`mofn_checker`] — `q`-out-of-`r` checker built from bit-sorting
//!   threshold networks and an exact-weight two-rail output plane
//!   (Marouf/Friedman-style); code-disjoint by construction, with both
//!   valid output polarities exercised across codewords.
//! * [`berger_checker`] — zero-counting network plus a two-rail comparator.
//!
//! [`self_testing`] measures, by exhaustive fault injection, which internal
//! faults of a checker netlist are detectable by codeword inputs — the
//! *self-testing* half of the totally-self-checking property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod berger_checker;
pub mod count;
pub mod mofn_checker;
pub mod parity_checker;
pub mod self_testing;
pub mod two_rail_checker;

use scm_codes::TwoRail;
use scm_logic::{Netlist, SignalId};

pub use berger_checker::BergerChecker;
pub use mofn_checker::MOutOfNChecker;
pub use parity_checker::ParityChecker;

/// A checker: maps an input word to a two-rail error indication.
///
/// The contract (code-disjointness) is: codewords of the checked code map to
/// *valid* pairs, non-codewords map to *invalid* pairs.
pub trait Checker {
    /// Width of the checked word in bits.
    fn input_width(&self) -> usize;

    /// Behavioural evaluation.
    fn eval(&self, word: u64) -> TwoRail;

    /// Emit the gate-level implementation over existing input signals;
    /// returns the `(t, f)` rail signals.
    ///
    /// # Panics
    /// Implementations panic if `inputs.len() != self.input_width()`.
    fn build_netlist(&self, netlist: &mut Netlist, inputs: &[SignalId]) -> (SignalId, SignalId);

    /// Human-readable name.
    fn name(&self) -> String;
}

/// Exhaustively verify code-disjointness of a checker netlist against a
/// membership predicate: every input word maps to a valid pair iff it is a
/// codeword. Returns the first offending word.
///
/// # Panics
/// Panics if the checker has more than 24 inputs (exhaustion guard).
pub fn code_disjoint_violation<F>(
    netlist: &Netlist,
    rails: (SignalId, SignalId),
    width: usize,
    is_codeword: F,
) -> Option<u64>
where
    F: Fn(u64) -> bool,
{
    assert!(
        width <= 24,
        "exhaustive check over {width} bits is too large"
    );
    for word in 0..(1u64 << width) {
        let eval = netlist.eval_word(word, None);
        let pair = TwoRail {
            t: eval.value(rails.0),
            f: eval.value(rails.1),
        };
        if pair.is_valid() != is_codeword(word) {
            return Some(word);
        }
    }
    None
}
