//! Workload generators: the address/operation streams driving detection
//! latency.
//!
//! The paper's analysis assumes **uniformly random addresses each cycle**;
//! [`AddressPattern::UniformRandom`] realises exactly that. Everything else
//! here probes how real access behaviour changes empirical latency — an
//! analysis the paper does not attempt, included as extension experiments.
//!
//! Two layers:
//!
//! * [`Workload`] — the original concrete generator over the fixed
//!   [`AddressPattern`] shapes, kept for direct callers.
//! * [`WorkloadModel`] — the pluggable layer the campaign engine and the
//!   exploration crate consume: a model is a *factory of deterministic
//!   per-trial op streams*, pure in `(spec, seed)`, so campaigns stay
//!   bit-identical at every thread count no matter which model drives
//!   them. Built-ins cover the paper's uniform model plus sequential
//!   scans, bursty locality, a zipf-like hot spot, and read-mostly /
//!   write-mostly mixes; [`model_by_name`] resolves the CLI spelling.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// One memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read the word at the address.
    Read(u64),
    /// Write a value at the address.
    Write(u64, u64),
}

impl Op {
    /// The address touched.
    pub fn addr(&self) -> u64 {
        match *self {
            Op::Read(a) | Op::Write(a, _) => a,
        }
    }
}

/// Address-sequence shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressPattern {
    /// Fresh uniform address every cycle (the paper's model).
    UniformRandom,
    /// `0, 1, 2, …` wrapping.
    Sequential,
    /// `0, k, 2k, …` wrapping (stride in words).
    Strided {
        /// Stride between consecutive accesses.
        stride: u64,
    },
    /// Uniform within a window of the given size starting at 0 (models a
    /// hot working set that never touches most rows).
    HotSpot {
        /// Window size in words.
        window: u64,
    },
}

/// A deterministic, seeded operation stream.
#[derive(Debug, Clone)]
pub struct Workload {
    pattern: AddressPattern,
    words: u64,
    word_mask: u64,
    write_fraction: f64,
    rng: SmallRng,
    counter: u64,
}

impl Workload {
    /// New workload over a `words`-word memory with `word_bits`-bit data.
    ///
    /// `write_fraction` in `[0, 1]` selects the probability a cycle is a
    /// write (with random data).
    ///
    /// # Panics
    /// Panics if `words == 0` or `write_fraction` is outside `[0, 1]`.
    pub fn new(
        pattern: AddressPattern,
        words: u64,
        word_bits: u32,
        write_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(words > 0, "empty memory");
        assert!(
            (0.0..=1.0).contains(&write_fraction),
            "write fraction {write_fraction} outside [0, 1]"
        );
        let word_mask = word_mask(word_bits);
        Workload {
            pattern,
            words,
            word_mask,
            write_fraction,
            rng: SmallRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// The paper's model: uniform random addresses, read-heavy (10 % writes).
    pub fn uniform(words: u64, word_bits: u32, seed: u64) -> Self {
        Workload::new(AddressPattern::UniformRandom, words, word_bits, 0.1, seed)
    }

    fn next_addr(&mut self) -> u64 {
        let a = match self.pattern {
            AddressPattern::UniformRandom => self.rng.gen_range(0..self.words),
            AddressPattern::Sequential => self.counter % self.words,
            AddressPattern::Strided { stride } => (self.counter * stride) % self.words,
            AddressPattern::HotSpot { window } => {
                let w = window.clamp(1, self.words);
                self.rng.gen_range(0..w)
            }
        };
        self.counter += 1;
        a
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        let addr = self.next_addr();
        if self.rng.gen_bool(self.write_fraction) {
            Op::Write(addr, self.rng.gen::<u64>() & self.word_mask)
        } else {
            Op::Read(addr)
        }
    }
}

/// Anything that yields memory operations one at a time.
///
/// Detection measurement ([`crate::sim::measure_detection_on`]) consumes
/// any `OpSource`, so campaigns can be driven by the concrete [`Workload`]
/// or by any stream a [`WorkloadModel`] fabricates.
pub trait OpSource {
    /// Produce the next operation.
    fn next_op(&mut self) -> Op;
}

impl OpSource for Workload {
    fn next_op(&mut self) -> Op {
        Workload::next_op(self)
    }
}

impl<T: OpSource + ?Sized> OpSource for Box<T> {
    fn next_op(&mut self) -> Op {
        (**self).next_op()
    }
}

/// A boxed, sendable operation stream — what a [`WorkloadModel`] fabricates
/// per trial.
pub type OpStream = Box<dyn OpSource + Send>;

/// The memory a stream drives, plus the campaign's baseline write mix.
///
/// Models that *are about* the read/write mix (e.g. [`ReadMostly`],
/// [`WriteMostly`]) override `write_fraction`; address-shape models honour
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Words in the memory (addresses are `0..words`).
    pub words: u64,
    /// Data width in bits (write values are masked to it).
    pub word_bits: u32,
    /// Baseline probability that a cycle is a write.
    pub write_fraction: f64,
}

/// A pluggable workload: a factory of deterministic per-trial op streams.
///
/// The determinism contract mirrors the campaign engine's: the stream
/// returned for a given `(spec, seed)` pair must always replay the same
/// operations, and must depend on nothing else (no global state, no
/// scheduling). That is what keeps campaign results bit-identical at every
/// thread count regardless of the model plugged in.
pub trait WorkloadModel: std::fmt::Debug + Send + Sync {
    /// Short CLI/report name (e.g. `"uniform"`, `"hotspot"`).
    fn name(&self) -> &'static str;

    /// Fabricate the op stream for one trial.
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream;
}

/// The paper's model: fresh uniform random address every cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformRandom;

impl WorkloadModel for UniformRandom {
    fn name(&self) -> &'static str {
        FixedPattern(AddressPattern::UniformRandom).name()
    }
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream {
        FixedPattern(AddressPattern::UniformRandom).stream(spec, seed)
    }
}

/// Sequential scan `0, 1, 2, …` wrapping — the scrubber's shape.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialScan;

impl WorkloadModel for SequentialScan {
    fn name(&self) -> &'static str {
        FixedPattern(AddressPattern::Sequential).name()
    }
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream {
        FixedPattern(AddressPattern::Sequential).stream(spec, seed)
    }
}

/// Legacy adapter: any fixed [`AddressPattern`] as a model (what the
/// engine's `pattern(..)` convenience plugs in).
#[derive(Debug, Clone, Copy)]
pub struct FixedPattern(pub AddressPattern);

impl WorkloadModel for FixedPattern {
    fn name(&self) -> &'static str {
        match self.0 {
            AddressPattern::UniformRandom => "uniform",
            AddressPattern::Sequential => "sequential",
            AddressPattern::Strided { .. } => "strided",
            AddressPattern::HotSpot { .. } => "hotspot-window",
        }
    }
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream {
        Box::new(Workload::new(
            self.0,
            spec.words,
            spec.word_bits,
            spec.write_fraction,
            seed,
        ))
    }
}

/// Bursty locality: pick a random base address, stream `burst` sequential
/// accesses from it, jump to a fresh base. DMA transfers and cache-line
/// refills look like this.
#[derive(Debug, Clone, Copy)]
pub struct Bursty {
    /// Accesses per burst before jumping to a new base.
    pub burst: u64,
}

impl Default for Bursty {
    fn default() -> Self {
        Bursty { burst: 32 }
    }
}

impl WorkloadModel for Bursty {
    fn name(&self) -> &'static str {
        "bursty"
    }
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream {
        Box::new(BurstyStream {
            words: spec.words,
            word_mask: word_mask(spec.word_bits),
            write_fraction: spec.write_fraction,
            burst: self.burst.max(1),
            base: 0,
            pos: u64::MAX, // forces a fresh base on the first op
            rng: SmallRng::seed_from_u64(seed),
        })
    }
}

#[derive(Debug)]
struct BurstyStream {
    words: u64,
    word_mask: u64,
    write_fraction: f64,
    burst: u64,
    base: u64,
    pos: u64,
    rng: SmallRng,
}

impl OpSource for BurstyStream {
    fn next_op(&mut self) -> Op {
        if self.pos >= self.burst {
            self.base = self.rng.gen_range(0..self.words);
            self.pos = 0;
        }
        let addr = (self.base + self.pos) % self.words;
        self.pos += 1;
        if self.rng.gen_bool(self.write_fraction) {
            Op::Write(addr, self.rng.gen::<u64>() & self.word_mask)
        } else {
            Op::Read(addr)
        }
    }
}

/// Zipf-like hot spot: address ranks drawn log-uniformly, so low addresses
/// absorb most of the traffic while the whole space stays reachable — the
/// classic skewed-popularity shape (`P[addr < x] ≈ ln x / ln words`),
/// unlike [`AddressPattern::HotSpot`]'s hard window.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotSpotZipf;

impl WorkloadModel for HotSpotZipf {
    fn name(&self) -> &'static str {
        "hotspot"
    }
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream {
        Box::new(ZipfStream {
            words: spec.words,
            // Span of the inverse CDF is words + 1 so the *top* address
            // stays reachable (exp(u·ln(words+1)) ∈ [1, words+1)).
            ln_span: ((spec.words + 1) as f64).ln(),
            word_mask: word_mask(spec.word_bits),
            write_fraction: spec.write_fraction,
            rng: SmallRng::seed_from_u64(seed),
        })
    }
}

#[derive(Debug)]
struct ZipfStream {
    words: u64,
    ln_span: f64,
    word_mask: u64,
    write_fraction: f64,
    rng: SmallRng,
}

impl OpSource for ZipfStream {
    fn next_op(&mut self) -> Op {
        let addr = if self.words == 1 {
            0
        } else {
            // Inverse-CDF of the log-uniform law: addr + 1 = (words+1)^u.
            let u: f64 = self.rng.gen();
            (((u * self.ln_span).exp()) as u64).clamp(1, self.words) - 1
        };
        if self.rng.gen_bool(self.write_fraction) {
            Op::Write(addr, self.rng.gen::<u64>() & self.word_mask)
        } else {
            Op::Read(addr)
        }
    }
}

/// Uniform addresses, 2 % writes — a lookup-table / code-store mix. The
/// spec's baseline write fraction is deliberately overridden: the mix *is*
/// the model.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadMostly;

impl WorkloadModel for ReadMostly {
    fn name(&self) -> &'static str {
        "read-mostly"
    }
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream {
        Box::new(Workload::new(
            AddressPattern::UniformRandom,
            spec.words,
            spec.word_bits,
            0.02,
            seed,
        ))
    }
}

/// Uniform addresses, 90 % writes — a logging / buffer-fill mix. Writes
/// deliver no data to the system, so detection leans entirely on the
/// decoder ROMs; this model stresses exactly that path.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteMostly;

impl WorkloadModel for WriteMostly {
    fn name(&self) -> &'static str {
        "write-mostly"
    }
    fn stream(&self, spec: WorkloadSpec, seed: u64) -> OpStream {
        Box::new(Workload::new(
            AddressPattern::UniformRandom,
            spec.words,
            spec.word_bits,
            0.9,
            seed,
        ))
    }
}

/// A background scrubber merged into an operation stream: every
/// `period`-th cycle is claimed by a sequential sweep read (slots sit at
/// the end of each period, mirroring the system layer's
/// `ScrubSchedule`), all other cycles drain the wrapped source. This is
/// the single-memory analogue of the system clock's scrub slots — the
/// mechanism that turns a one-shot transient flip from
/// "maybe-never-read" into "read within one sweep".
#[derive(Debug)]
pub struct ScrubInterleaver<S> {
    inner: S,
    period: u64,
    words: u64,
    next_addr: u64,
    cycle: u64,
}

impl<S: OpSource> ScrubInterleaver<S> {
    /// Wrap `inner`, claiming every `period`-th cycle for a sweep read
    /// over `words` addresses (`period = 0` disables scrubbing — the
    /// wrapper becomes transparent).
    pub fn new(inner: S, period: u64, words: u64) -> Self {
        assert!(words > 0, "empty memory");
        ScrubInterleaver {
            inner,
            period,
            words,
            next_addr: 0,
            cycle: 0,
        }
    }
}

impl<S: OpSource> OpSource for ScrubInterleaver<S> {
    fn next_op(&mut self) -> Op {
        let cycle = self.cycle;
        self.cycle += 1;
        if self.period > 0 && (cycle + 1).is_multiple_of(self.period) {
            let addr = self.next_addr;
            self.next_addr = (addr + 1) % self.words;
            Op::Read(addr)
        } else {
            self.inner.next_op()
        }
    }
}

fn word_mask(word_bits: u32) -> u64 {
    if word_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << word_bits) - 1
    }
}

/// CLI names of every built-in model, in presentation order.
pub const MODEL_NAMES: [&str; 6] = [
    "uniform",
    "sequential",
    "bursty",
    "hotspot",
    "read-mostly",
    "write-mostly",
];

/// Resolve a built-in model from its CLI name.
pub fn model_by_name(name: &str) -> Option<Arc<dyn WorkloadModel>> {
    Some(match name {
        "uniform" => Arc::new(UniformRandom),
        "sequential" => Arc::new(SequentialScan),
        "bursty" => Arc::new(Bursty::default()),
        "hotspot" => Arc::new(HotSpotZipf),
        "read-mostly" => Arc::new(ReadMostly),
        "write-mostly" => Arc::new(WriteMostly),
        _ => return None,
    })
}

/// All built-in models, in [`MODEL_NAMES`] order.
pub fn builtin_models() -> Vec<Arc<dyn WorkloadModel>> {
    MODEL_NAMES
        .iter()
        .map(|n| model_by_name(n).expect("all built-in names resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut w1 = Workload::uniform(256, 16, 42);
        let mut w2 = Workload::uniform(256, 16, 42);
        for _ in 0..100 {
            assert_eq!(w1.next_op(), w2.next_op());
        }
    }

    #[test]
    fn addresses_in_range() {
        for pattern in [
            AddressPattern::UniformRandom,
            AddressPattern::Sequential,
            AddressPattern::Strided { stride: 7 },
            AddressPattern::HotSpot { window: 16 },
        ] {
            let mut w = Workload::new(pattern, 100, 8, 0.5, 1);
            for _ in 0..500 {
                let op = w.next_op();
                assert!(op.addr() < 100, "{pattern:?}: {op:?}");
                if let Op::Write(_, v) = op {
                    assert!(v < 256);
                }
            }
        }
    }

    #[test]
    fn sequential_wraps() {
        let mut w = Workload::new(AddressPattern::Sequential, 4, 8, 0.0, 0);
        let addrs: Vec<u64> = (0..8).map(|_| w.next_op().addr()).collect();
        assert_eq!(addrs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn hotspot_confined_to_window() {
        let mut w = Workload::new(AddressPattern::HotSpot { window: 4 }, 1024, 8, 0.0, 7);
        for _ in 0..1000 {
            assert!(w.next_op().addr() < 4);
        }
    }

    #[test]
    fn write_fraction_zero_means_reads_only() {
        let mut w = Workload::new(AddressPattern::UniformRandom, 64, 8, 0.0, 3);
        for _ in 0..200 {
            assert!(matches!(w.next_op(), Op::Read(_)));
        }
    }

    #[test]
    fn uniform_covers_address_space() {
        let mut w = Workload::uniform(16, 8, 9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(w.next_op().addr());
        }
        assert_eq!(seen.len(), 16, "uniform stream should reach every word");
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            words: 256,
            word_bits: 8,
            write_fraction: 0.1,
        }
    }

    #[test]
    fn registry_resolves_every_builtin_and_rejects_unknowns() {
        for name in MODEL_NAMES {
            let model = model_by_name(name).expect(name);
            assert_eq!(model.name(), name);
        }
        assert!(model_by_name("adversarial").is_none());
        assert_eq!(builtin_models().len(), MODEL_NAMES.len());
    }

    #[test]
    fn model_streams_are_pure_in_seed() {
        for model in builtin_models() {
            let mut a = model.stream(spec(), 77);
            let mut b = model.stream(spec(), 77);
            for i in 0..200 {
                assert_eq!(a.next_op(), b.next_op(), "{} op {i}", model.name());
            }
        }
    }

    #[test]
    fn model_addresses_and_values_in_range() {
        for model in builtin_models() {
            let mut s = model.stream(spec(), 3);
            for _ in 0..500 {
                let op = s.next_op();
                assert!(op.addr() < 256, "{}: {op:?}", model.name());
                if let Op::Write(_, v) = op {
                    assert!(v < 256, "{}: {op:?}", model.name());
                }
            }
        }
    }

    #[test]
    fn bursty_runs_are_sequential_within_a_burst() {
        let model = Bursty { burst: 8 };
        let mut s = model.stream(
            WorkloadSpec {
                words: 1024,
                word_bits: 8,
                write_fraction: 0.0,
            },
            5,
        );
        let addrs: Vec<u64> = (0..24).map(|_| s.next_op().addr()).collect();
        for chunk in addrs.chunks(8) {
            for w in chunk.windows(2) {
                assert_eq!(w[1], (w[0] + 1) % 1024, "burst not sequential: {addrs:?}");
            }
        }
    }

    #[test]
    fn zipf_hotspot_skews_towards_low_addresses() {
        let mut s = HotSpotZipf.stream(
            WorkloadSpec {
                words: 1024,
                word_bits: 8,
                write_fraction: 0.0,
            },
            11,
        );
        let low = (0..4000).filter(|_| s.next_op().addr() < 32).count();
        // Log-uniform: P[addr < 32] ≈ ln 33 / ln 1025 ≈ 0.50; uniform
        // would give 3 %. Anything above 30 % proves the skew.
        assert!(low > 1200, "low-address hits {low}/4000");
    }

    #[test]
    fn zipf_reaches_the_whole_space_including_the_top_address() {
        let mut s = HotSpotZipf.stream(
            WorkloadSpec {
                words: 8,
                word_bits: 8,
                write_fraction: 0.0,
            },
            13,
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            seen.insert(s.next_op().addr());
        }
        assert_eq!(seen.len(), 8, "skewed, not truncated: {seen:?}");
    }

    #[test]
    fn scrub_interleaver_claims_exactly_the_period_slots() {
        let inner = Workload::new(AddressPattern::Sequential, 100, 8, 0.0, 0);
        let mut s = ScrubInterleaver::new(inner, 4, 6);
        let ops: Vec<Op> = (0..12).map(|_| s.next_op()).collect();
        // Slots at cycles 3, 7, 11 sweep 0, 1, 2; other cycles drain the
        // sequential mission stream 0, 1, 2, ...
        let addrs: Vec<u64> = ops.iter().map(Op::addr).collect();
        assert_eq!(addrs, vec![0, 1, 2, 0, 3, 4, 5, 1, 6, 7, 8, 2]);
        // Period 0 is transparent.
        let inner = Workload::new(AddressPattern::Sequential, 100, 8, 0.0, 0);
        let mut s = ScrubInterleaver::new(inner, 0, 6);
        let addrs: Vec<u64> = (0..5).map(|_| s.next_op().addr()).collect();
        assert_eq!(addrs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mix_models_override_the_baseline_write_fraction() {
        let count_writes = |model: &dyn WorkloadModel| {
            let mut s = model.stream(spec(), 9);
            (0..2000)
                .filter(|_| matches!(s.next_op(), Op::Write(..)))
                .count()
        };
        let read_mostly = count_writes(&ReadMostly);
        let uniform = count_writes(&UniformRandom);
        let write_mostly = count_writes(&WriteMostly);
        assert!(read_mostly < 120, "read-mostly wrote {read_mostly}/2000");
        assert!(
            (120..350).contains(&uniform),
            "uniform wrote {uniform}/2000"
        );
        assert!(
            write_mostly > 1600,
            "write-mostly wrote {write_mostly}/2000"
        );
    }
}
