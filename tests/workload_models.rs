//! Property tests for the pluggable [`WorkloadModel`] generators.
//!
//! Three contracts every model must honour:
//!
//! 1. **Range safety** — addresses always inside the memory, write values
//!    always inside the word mask;
//! 2. **Purity** — a trial's stream is a pure function of `(spec, seed)`:
//!    regenerating it replays identical operations (this is what makes the
//!    campaign engine bit-identical at every thread count under any
//!    model);
//! 3. **Distinctness** — distinct models produce measurably distinct
//!    access mixes (a model that degenerates into another would silently
//!    void every workload-sensitivity experiment).

use proptest::prelude::*;
use scm_memory::workload::{builtin_models, model_by_name, Op, WorkloadSpec, MODEL_NAMES};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (3u32..=12, 1u32..=16, 0u64..=10).prop_map(|(wlog, bits, wf10)| WorkloadSpec {
        words: 1u64 << wlog,
        word_bits: bits,
        write_fraction: wf10 as f64 / 10.0,
    })
}

/// Behavioural signature of a stream: (write count, distinct addresses,
/// hits on the lowest 1/32nd of the space) over `ops` operations.
fn signature(model_name: &str, spec: WorkloadSpec, seed: u64, ops: usize) -> (usize, usize, usize) {
    let model = model_by_name(model_name).expect("builtin");
    let mut stream = model.stream(spec, seed);
    let mut writes = 0usize;
    let mut seen = std::collections::HashSet::new();
    let mut low = 0usize;
    let low_bound = (spec.words / 32).max(1);
    for _ in 0..ops {
        let op = stream.next_op();
        if matches!(op, Op::Write(..)) {
            writes += 1;
        }
        seen.insert(op.addr());
        if op.addr() < low_bound {
            low += 1;
        }
    }
    (writes, seen.len(), low)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_addresses_and_values_always_in_range(spec in arb_spec(), seed in any::<u64>()) {
        let mask = if spec.word_bits >= 64 { u64::MAX } else { (1u64 << spec.word_bits) - 1 };
        for model in builtin_models() {
            let mut stream = model.stream(spec, seed);
            for i in 0..400 {
                let op = stream.next_op();
                prop_assert!(op.addr() < spec.words, "{} op {i}: {op:?}", model.name());
                if let Op::Write(_, v) = op {
                    prop_assert!(v <= mask, "{} op {i}: {op:?}", model.name());
                }
            }
        }
    }

    #[test]
    fn prop_streams_are_pure_functions_of_their_seed(spec in arb_spec(), seed in any::<u64>()) {
        for model in builtin_models() {
            let mut first = model.stream(spec, seed);
            let mut second = model.stream(spec, seed);
            for i in 0..300 {
                prop_assert_eq!(first.next_op(), second.next_op(), "{} op {}", model.name(), i);
            }
            // A different seed must not replay the same stream for the
            // stochastic models (sequential is seed-free by design).
            if model.name() != "sequential" {
                let mut third = model.stream(spec, seed ^ 0x5DEECE66D);
                let mut fourth = model.stream(spec, seed);
                let diverges = (0..300).any(|_| third.next_op() != fourth.next_op());
                prop_assert!(diverges, "{}: seed does not influence the stream", model.name());
            }
        }
    }

    #[test]
    fn prop_distinct_models_produce_distinct_access_mixes(seed in any::<u64>()) {
        // A roomy memory and the campaign default write mix keep every
        // pairwise contrast observable.
        let spec = WorkloadSpec { words: 1024, word_bits: 8, write_fraction: 0.1 };
        let ops = 2048;
        let sigs: Vec<(&str, (usize, usize, usize))> = MODEL_NAMES
            .iter()
            .map(|name| (*name, signature(name, spec, seed, ops)))
            .collect();
        for (i, (name_a, sig_a)) in sigs.iter().enumerate() {
            for (name_b, sig_b) in &sigs[i + 1..] {
                prop_assert_ne!(
                    sig_a, sig_b,
                    "models {} and {} are behaviourally indistinguishable",
                    name_a, name_b
                );
            }
        }
        // And the distinctions point the right way.
        let by_name: std::collections::HashMap<&str, (usize, usize, usize)> =
            sigs.into_iter().collect();
        let (uni_w, _uni_distinct, uni_low) = by_name["uniform"];
        let (seq_w, seq_distinct, _) = by_name["sequential"];
        let (_, _, zipf_low) = by_name["hotspot"];
        let (rm_w, ..) = by_name["read-mostly"];
        let (wm_w, ..) = by_name["write-mostly"];
        prop_assert!(rm_w < uni_w && uni_w < wm_w,
            "write mix ordering violated: {rm_w} / {uni_w} / {wm_w}");
        prop_assert!(zipf_low > 4 * uni_low.max(1),
            "hotspot not skewed: {zipf_low} vs uniform {uni_low}");
        // A 2048-op sequential scan sweeps the space exactly twice.
        prop_assert_eq!(seq_distinct, 1024);
        let _ = seq_w;
    }
}
