//! Extension experiment: **deterministic scrubbing bounds** — the hard
//! (non-probabilistic) detection-latency guarantee a sequential background
//! sweep adds on top of the paper's `Pndc` — now adjudicated empirically:
//! the campaign engine drives an actual sequential sweep over a RAM with
//! the selected mapping and confirms that every analytically-detectable
//! row-decoder fault is caught within one full sweep, and that exactly the
//! analytically-undetectable faults stay silent.
//!
//! Run: `cargo run -p scm-bench --bin scrubbing`

use scm_codes::selection::{select_code, LatencyBudget, SelectionPolicy};
use scm_memory::campaign::{decoder_fault_universe, CampaignConfig};
use scm_memory::design::RamConfig;
use scm_memory::engine::CampaignEngine;
use scm_memory::fault::FaultSite;
use scm_memory::scrub::sweep_bound;
use scm_memory::workload::AddressPattern;

fn main() {
    let n = 7u32; // the 1K×16 row decoder
    println!("deterministic sweep bounds, p = {n} row decoder (128 lines)");
    println!();
    println!(
        "{:<12} | {:>4} | {:>9} | {:>9} | {:>12} | {:>7} | {:>14}",
        "code", "a", "SA0 bound", "SA1 bound", "undetectable", "faults", "sweep-verified"
    );
    println!("{}", "-".repeat(88));
    for pndc in [1e-2, 1e-5, 1e-9, 1e-15] {
        let plan = select_code(
            LatencyBudget::new(10, pndc).unwrap(),
            SelectionPolicy::InverseA,
        )
        .unwrap();
        let map = plan.mapping(1 << n).unwrap();
        let bound = sweep_bound(n, &map);

        // Empirical: a 512×8 RAM (rows = 2^7) under a pure sequential
        // sweep, one deterministic trial per row-decoder fault.
        let org = scm_area::RamOrganization::new(512, 8, 4);
        let config = RamConfig::new(org, map.clone(), plan.mapping(4).unwrap());
        let words = org.words();
        let faults: Vec<FaultSite> = decoder_fault_universe(n)
            .into_iter()
            .map(FaultSite::RowDecoder)
            .collect();
        // Two full sweeps: anything silent after that is undetectable by a
        // scrub of this mapping.
        let campaign = CampaignConfig {
            cycles: 2 * words,
            trials: 1,
            seed: 0x5C2B,
            write_fraction: 0.0,
        };
        let result = CampaignEngine::new(campaign)
            .pattern(AddressPattern::Sequential)
            .run(&config, &faults);

        let mut never_detected = 0usize;
        let mut late = 0usize;
        for f in &result.per_fault {
            if f.detected == 0 {
                never_detected += 1;
            } else if f.detection_cycle_sum >= words {
                late += 1; // detected, but not within the first full sweep
            }
        }
        let verified = never_detected == bound.undetectable as usize && late == 0;
        println!(
            "{:<12} | {:>4} | {:>9} | {:>9} | {:>12} | {:>7} | {:>14}",
            plan.code_name(),
            plan.a(),
            bound.worst_sa0,
            bound.worst_sa1,
            bound.undetectable,
            bound.total,
            if verified { "yes" } else { "MISMATCH" }
        );
        assert!(
            verified,
            "sweep adjudication failed: {never_detected} silent (analytic {}), {late} late",
            bound.undetectable
        );
    }
    println!();
    println!("reading: with one scrub read per slot, every stuck-at-0 is caught within");
    println!("one full sweep (2^p slots: only the stuck line's own address exposes it),");
    println!("and every detectable stuck-at-1 within half a sweep + 1 (the sweep's dead");
    println!("zone inside the faulty top-bit half). Undetectable = codeword-colliding");
    println!("line pairs — the residue the paper's Pndc budget prices; note how it");
    println!("shrinks as the code strengthens, vanishing for a >= #lines.");
    println!("'sweep-verified' = the engine's sequential-sweep campaign found exactly");
    println!("the analytic undetectable set silent and everything else within one sweep.");
}
