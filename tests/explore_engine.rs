//! Integration contract of the design-space exploration engine, mirroring
//! `tests/campaign_engine.rs`: whatever the thread count, an exploration
//! returns **bit-identical** results — including the empirically
//! adjudicated figures, which ride the campaign engine's own determinism
//! guarantee.

use scm_area::RamOrganization;
use scm_codes::selection::{select_code, LatencyBudget, SelectionPolicy};
use scm_explore::{
    pareto_front, system_pareto_front, Adjudication, Evaluator, ExplorationSpace, FaultMix,
    ScrubPolicy, SystemAdjudication,
};
use scm_memory::campaign::CampaignConfig;

fn adjudicated_space() -> ExplorationSpace {
    ExplorationSpace {
        geometries: vec![
            RamOrganization::new(256, 8, 4),
            RamOrganization::new(512, 16, 8),
        ],
        cycles: vec![5, 10, 20],
        pndcs: vec![1e-2, 1e-9],
        policies: SelectionPolicy::ALL.to_vec(),
        scrubs: vec![ScrubPolicy::Off, ScrubPolicy::SequentialSweep],
        workloads: vec!["uniform".to_owned(), "hotspot".to_owned()],
        banks: vec![1],
        checkpoints: vec![0],
        repairs: vec![scm_explore::RepairPolicy::OFF],
        fault_mixes: vec![FaultMix::Permanent],
    }
}

fn evaluator(threads: usize) -> Evaluator {
    Evaluator::default()
        .threads(threads)
        .adjudicate(Adjudication {
            campaign: CampaignConfig {
                cycles: 10,
                trials: 5,
                seed: 0xD1CE,
                write_fraction: 0.1,
            },
            max_faults: 10,
            scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
            sliced: false,
            lane_width: 512,
        })
}

fn sliced_evaluator(threads: usize) -> Evaluator {
    Evaluator::default()
        .threads(threads)
        .adjudicate(Adjudication {
            campaign: CampaignConfig {
                cycles: 10,
                trials: 5,
                seed: 0xD1CE,
                write_fraction: 0.1,
            },
            max_faults: 10,
            scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
            sliced: true,
            lane_width: 512,
        })
}

#[test]
fn sliced_adjudication_is_bit_identical_at_every_thread_count() {
    let space = adjudicated_space();
    let reference = sliced_evaluator(1).evaluate_space(&space);
    assert!(
        reference.iter().any(|r| r.is_ok()),
        "space fully infeasible?"
    );
    for threads in [2usize, 4] {
        let result = sliced_evaluator(threads).evaluate_space(&space);
        assert_eq!(reference, result, "{threads} threads diverged");
    }
    // The sliced engine shares one op stream across all fault lanes, so
    // its trial estimates legitimately differ from the scalar engine's
    // per-fault streams — but every point must still adjudicate to a
    // probability, not a panic or a NaN.
    for eval in reference.into_iter().flatten() {
        let emp = eval.empirical.expect("adjudicated");
        assert!(emp.worst_escape.is_finite() && emp.worst_escape <= 1.0);
    }
}

#[test]
fn exploration_is_bit_identical_at_every_thread_count() {
    let space = adjudicated_space();
    let reference = evaluator(1).evaluate_space(&space);
    assert!(
        reference.iter().any(|r| r.is_ok()),
        "space fully infeasible?"
    );
    for threads in [2usize, 4, 7] {
        let result = evaluator(threads).evaluate_space(&space);
        assert_eq!(reference, result, "{threads} threads diverged");
    }
}

#[test]
fn frontier_is_deterministic_and_survives_reordering_of_threads() {
    let space = adjudicated_space();
    let collect = |threads: usize| -> Vec<_> {
        evaluator(threads)
            .evaluate_space(&space)
            .into_iter()
            .filter_map(Result::ok)
            .collect()
    };
    let front1 = pareto_front(&collect(1));
    let front4 = pareto_front(&collect(4));
    assert_eq!(front1, front4);
    assert!(!front1.is_empty());
}

fn system_space() -> ExplorationSpace {
    ExplorationSpace {
        geometries: vec![RamOrganization::new(256, 8, 4)],
        cycles: vec![5, 10],
        pndcs: vec![1e-2, 1e-9],
        policies: vec![SelectionPolicy::WorstBlockExact],
        scrubs: vec![ScrubPolicy::Off, ScrubPolicy::SequentialSweep],
        workloads: vec!["uniform".to_owned()],
        banks: vec![1, 4],
        checkpoints: vec![0, 64],
        repairs: vec![scm_explore::RepairPolicy::OFF],
        fault_mixes: vec![FaultMix::Permanent],
    }
}

fn system_evaluator(threads: usize) -> Evaluator {
    Evaluator::default()
        .threads(threads)
        .system_stage(SystemAdjudication {
            horizon: 120,
            trials: 3,
            seed: 0xCAFE,
            max_faults_per_bank: 6,
            ..SystemAdjudication::default()
        })
}

#[test]
fn system_stage_is_bit_identical_at_every_thread_count() {
    let space = system_space();
    let reference = system_evaluator(1).evaluate_space(&space);
    assert!(reference
        .iter()
        .any(|r| r.as_ref().is_ok_and(|e| e.system.is_some())));
    for threads in [2usize, 4] {
        let result = system_evaluator(threads).evaluate_space(&space);
        assert_eq!(reference, result, "{threads} threads diverged");
    }
}

#[test]
fn system_frontier_trades_area_latency_and_lost_work() {
    let evaluations: Vec<_> = system_evaluator(0)
        .evaluate_space(&system_space())
        .into_iter()
        .filter_map(Result::ok)
        .collect();
    let front = system_pareto_front(&evaluations);
    assert!(!front.is_empty() && front.len() <= evaluations.len());
    for e in &front {
        let figures = e.system.expect("system frontier carries figures");
        assert!(figures.banks == e.point.banks.max(1));
        assert!(figures.mean_latency <= figures.worst_latency + 1e-9);
        assert!(figures.expected_lost_work >= 0.0);
    }
    // The classic frontier ignores system figures, so both frontiers are
    // available side by side.
    assert!(!pareto_front(&evaluations).is_empty());
}

#[test]
fn scrubbed_system_points_carry_their_bandwidth_overhead() {
    let evaluations: Vec<_> = system_evaluator(0)
        .evaluate_space(&system_space())
        .into_iter()
        .filter_map(Result::ok)
        .collect();
    for e in &evaluations {
        let figures = e.system.expect("system stage ran for every point");
        match e.point.scrub {
            ScrubPolicy::Off => assert_eq!(figures.scrub_overhead, 0.0),
            ScrubPolicy::SequentialSweep => {
                assert!((figures.scrub_overhead - 0.25).abs() < 1e-12)
            }
        }
    }
}

#[test]
fn goal_solve_agrees_with_direct_selection() {
    let ev = Evaluator::default();
    for policy in SelectionPolicy::ALL {
        for (c, pndc) in [(2u32, 1e-9), (10, 1e-9), (10, 1e-30), (40, 1e-2)] {
            let e = ev
                .goal_solve(RamOrganization::with_mux8(2048, 16), c, pndc, policy)
                .unwrap();
            let direct = select_code(LatencyBudget::new(c, pndc).unwrap(), policy).unwrap();
            assert_eq!(e.plan, direct, "{policy:?} c={c} pndc={pndc}");
            assert!(e.meets_goal);
        }
    }
}

#[test]
fn adjudicated_figures_stay_within_the_analytic_regime() {
    // Empirical worst error-escape under the uniform model must sit at or
    // below the analytic per-cycle bound plus sampling noise — the same
    // adjudication montecarlo_validation performs, reached through the
    // exploration pipeline.
    let ev = Evaluator::default().adjudicate(Adjudication {
        campaign: CampaignConfig {
            cycles: 10,
            trials: 48,
            seed: 0xADA,
            write_fraction: 0.1,
        },
        max_faults: 0, // whole row-decoder universe
        scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
        sliced: false,
        lane_width: 512,
    });
    let e = ev
        .goal_solve(
            RamOrganization::new(512, 8, 4),
            10,
            1e-9,
            SelectionPolicy::InverseA,
        )
        .unwrap();
    let emp = e.empirical.expect("adjudicated");
    let noise = 2.0 / emp.trials_per_fault as f64;
    assert!(
        emp.worst_error_escape <= e.escape_per_cycle + noise,
        "empirical {} vs analytic {}",
        emp.worst_error_escape,
        e.escape_per_cycle
    );
}
