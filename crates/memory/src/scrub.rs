//! Deterministic scrubbing: turning the paper's probabilistic latency bound
//! into a hard one.
//!
//! The paper's `Pndc` is probabilistic because mission addresses are
//! uncontrolled. A background **scrubber** that injects one read per scrub
//! slot, sweeping a chosen address sequence, makes detection deterministic:
//!
//! * every stuck-at-0 decoder fault is caught by the sweep step that
//!   addresses the stuck line (≤ one full sweep);
//! * a stuck-at-1 fault on line `m1` is caught by the first swept address
//!   whose field differs from `m1` **and** maps to a different codeword —
//!   which exists iff the fault is detectable at all.
//!
//! [`worst_case_sweep_latency`] computes, per fault, the exact worst-case
//! number of scrub steps to detection over all sweep phases, giving the
//! hard bound a safety case can cite alongside the probabilistic one.

use crate::decoder_unit::DecoderFault;
use scm_codes::CodewordMap;

/// Outcome of the deterministic sweep analysis for one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepLatency {
    /// Detected within the given number of scrub steps, worst case over
    /// all starting phases of the sweep.
    Within(u64),
    /// No swept address can ever detect the fault (codeword-colliding
    /// stuck-at-1): scrubbing does not help.
    Never,
}

/// Exact worst-case scrub-steps-to-detection for a decoder fault under a
/// cyclic sequential sweep of all `2^n` decoder values.
///
/// The decoder has `n` input bits; the map assigns codewords to its lines.
pub fn worst_case_sweep_latency(n: u32, map: &CodewordMap, fault: DecoderFault) -> SweepLatency {
    let span = 1u64 << n;
    assert_eq!(map.num_lines(), span, "map does not match decoder size");
    let field_mask = ((1u64 << fault.bits) - 1) << fault.offset;
    let stuck_field = fault.value << fault.offset;

    // Which swept values detect the fault?
    let detecting: Vec<bool> = (0..span)
        .map(|v| {
            if fault.stuck_one {
                // Two lines: v and companion; detected iff codewords differ.
                let companion = (v & !field_mask) | stuck_field;
                companion != v && !map.same_codeword(v, companion)
            } else {
                // All-zero collapse when the field matches: always detected.
                v & field_mask == stuck_field
            }
        })
        .collect();

    if !detecting.iter().any(|&d| d) {
        return SweepLatency::Never;
    }
    // Worst case over phases = the longest run of non-detecting values in
    // the cyclic order, plus one (the detecting step itself).
    let mut longest_gap = 0u64;
    let mut current = 0u64;
    // Double traversal handles wrap-around runs.
    for _ in 0..2 {
        for &d in &detecting {
            if d {
                longest_gap = longest_gap.max(current);
                current = 0;
            } else {
                current += 1;
            }
        }
    }
    longest_gap = longest_gap.max(current.min(span - 1));
    SweepLatency::Within(longest_gap + 1)
}

/// The hard bound over an entire decoder fault universe: the maximum
/// [`SweepLatency::Within`] per polarity over detectable faults, and the
/// count of undetectable ones.
///
/// The split matters: a stuck-at-0 on a last-level line is only observable
/// on the one address selecting it, so its hard bound is a full sweep
/// (`2^n` steps) by nature; stuck-at-1 faults are caught much faster
/// because *almost every* swept address pairs detectably with the stuck
/// line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepBound {
    /// Worst-case steps over all detectable faults (both polarities).
    pub worst_steps: u64,
    /// Worst-case steps over stuck-at-0 faults.
    pub worst_sa0: u64,
    /// Worst-case steps over detectable stuck-at-1 faults.
    pub worst_sa1: u64,
    /// Faults no sweep step can catch.
    pub undetectable: usize,
    /// Faults analysed.
    pub total: usize,
}

/// Analyse all faults of a multilevel decoder under a sequential sweep.
pub fn sweep_bound(n: u32, map: &CodewordMap) -> SweepBound {
    let mut worst = 0u64;
    let mut worst_sa0 = 0u64;
    let mut worst_sa1 = 0u64;
    let mut undetectable = 0usize;
    let mut total = 0usize;
    for (bits, offset) in crate::decoder_unit::multilevel_blocks(n) {
        for value in 0..(1u64 << bits) {
            for stuck_one in [false, true] {
                total += 1;
                let fault = DecoderFault {
                    bits,
                    offset,
                    value,
                    stuck_one,
                };
                match worst_case_sweep_latency(n, map, fault) {
                    SweepLatency::Within(steps) => {
                        worst = worst.max(steps);
                        if stuck_one {
                            worst_sa1 = worst_sa1.max(steps);
                        } else {
                            worst_sa0 = worst_sa0.max(steps);
                        }
                    }
                    SweepLatency::Never => undetectable += 1,
                }
            }
        }
    }
    SweepBound {
        worst_steps: worst,
        worst_sa0,
        worst_sa1,
        undetectable,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scm_codes::MOutOfN;

    fn map(a: u64, n: u32) -> CodewordMap {
        CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), a, 1u64 << n).unwrap()
    }

    #[test]
    fn sa0_latency_bounded_by_field_period() {
        // SA0 on a 2-bit block at offset 1 of a 5-bit decoder: the field
        // repeats every 8 values; worst phase waits just under one period.
        let m = map(9, 5);
        let fault = DecoderFault {
            bits: 2,
            offset: 1,
            value: 3,
            stuck_one: false,
        };
        match worst_case_sweep_latency(5, &m, fault) {
            SweepLatency::Within(steps) => assert!(steps <= 8, "steps {steps}"),
            SweepLatency::Never => panic!("SA0 is always detectable"),
        }
    }

    #[test]
    fn identity_mapping_detects_every_sa1_in_one_sweep() {
        let m = CodewordMap::identity_mofn(32).unwrap();
        let bound = sweep_bound(5, &m);
        assert_eq!(bound.undetectable, 0);
        assert!(bound.worst_steps <= 32);
        // The SA1 hard bound is governed by the top-bit 0-level block: the
        // sweep spends 2^(n-1) consecutive steps inside the stuck half
        // (no error at all there), then detects immediately: 2^4 + 1.
        assert_eq!(bound.worst_sa1, 17);
    }

    #[test]
    fn colliding_sa1_is_never_caught_by_scrubbing() {
        // With a = 9 over 16 lines, lines 1 and 10 share a codeword; the
        // SA1 on the *full-block* line 1 errs only when 10 is addressed —
        // undetectable, sweep or not.
        let m = map(9, 4);
        let fault = DecoderFault {
            bits: 4,
            offset: 0,
            value: 1,
            stuck_one: true,
        };
        // Not Never: other swept addresses (2..=8, 11..) also pair with 1
        // and differ in codeword! Companion for v: (v & !mask)|1·… — the
        // whole address is the field here, so companion is always line 1:
        // v = 10 collides, every other v ≠ 1 detects. So Within(...).
        match worst_case_sweep_latency(4, &m, fault) {
            SweepLatency::Within(steps) => assert!(steps <= 3, "steps {steps}"),
            SweepLatency::Never => panic!("only one colliding partner among 15"),
        }
        // A genuinely undetectable case needs *every* companion pair to
        // collide: even modulus at offset ≥ v2(a). a = 9 is odd, so build
        // the pathological even case explicitly.
        let bad = CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), 9, 16).unwrap();
        let _ = bad; // the odd case has no Never faults:
        let bound = sweep_bound(4, &m);
        assert_eq!(
            bound.undetectable, 0,
            "odd a: every fault detectable under sweep"
        );
    }

    #[test]
    fn scrub_bound_is_small_relative_to_address_space() {
        // The hard bound for a 6-bit decoder with a = 9: every detectable
        // fault is caught within a handful of steps, far below 2^6.
        let m = map(9, 6);
        let bound = sweep_bound(6, &m);
        assert_eq!(bound.undetectable, 0);
        // SA0 on a last-level line is observable on exactly one address:
        // the hard bound is one full sweep.
        assert_eq!(bound.worst_sa0, 64);
        // The SA1 hard bound is the top-bit block's half-sweep dead zone
        // (2^5 error-free steps) plus the detecting step.
        assert_eq!(bound.worst_sa1, 33);
    }

    #[test]
    fn degenerate_one_bit_decoder_two_rows() {
        // The smallest legal decoder: n = 1 (a 2-row array, or the
        // column decoder of a small mux). Both SA0s are caught within
        // the 2-step sweep; both SA1s pair the two lines, whose
        // codewords differ under any sane 2-line map.
        let m = CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), 3, 2).unwrap();
        let bound = sweep_bound(1, &m);
        assert_eq!(
            bound.total, 4,
            "one 1-bit block, two values, two polarities"
        );
        assert_eq!(bound.undetectable, 0);
        assert!(bound.worst_sa0 <= 2, "{bound:?}");
        assert!(bound.worst_sa1 <= 2, "{bound:?}");
        assert!(bound.worst_steps <= 2);
    }

    #[test]
    fn degenerate_single_column_parity_map() {
        // The single-column-select shape: a 1-bit decoder under the
        // 1-out-of-2 input-parity map (what a mux-2 column path uses).
        // Addresses 0 and 1 differ in parity, so every fault is caught
        // within one full sweep of the 2-entry space.
        let m = CodewordMap::input_parity(2);
        let bound = sweep_bound(1, &m);
        assert_eq!(bound.undetectable, 0);
        assert_eq!(bound.worst_sa0, 2, "SA0 needs the full (2-step) sweep");
        assert!(bound.worst_sa1 <= 2);
    }

    #[test]
    fn all_undetectable_map_reports_never_not_a_bogus_bound() {
        // A deliberately broken map — both lines re-mapped onto one
        // codeword via the generalised remap machinery — makes every
        // stuck-at-1 pairing collide: the sweep must report them as
        // undetectable rather than fabricating a finite bound, while
        // stuck-at-0 collapses (all-ones ROM word) stay catchable.
        let m = CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), 3, 2)
            .unwrap()
            .with_remap(1, 0)
            .unwrap();
        assert!(m.same_codeword(0, 1), "the map must actually collide");
        for value in 0..2u64 {
            let fault = DecoderFault {
                bits: 1,
                offset: 0,
                value,
                stuck_one: true,
            };
            assert_eq!(
                worst_case_sweep_latency(1, &m, fault),
                SweepLatency::Never,
                "colliding SA1 on value {value}"
            );
        }
        let bound = sweep_bound(1, &m);
        assert_eq!(bound.undetectable, 2, "exactly the two SA1s are blind");
        assert_eq!(bound.worst_sa1, 0, "no detectable SA1 exists");
        assert_eq!(bound.worst_sa0, 2);
    }

    #[test]
    fn parity_mapping_under_sweep() {
        // 1-out-of-2 with the parity mapping: consecutive addresses differ
        // in parity, so every SA1 with a non-degenerate companion is caught
        // within ~2 steps.
        let m = CodewordMap::input_parity(64);
        let bound = sweep_bound(6, &m);
        assert_eq!(bound.undetectable, 0);
        assert_eq!(bound.worst_sa0, 64, "full-block SA0 needs the whole sweep");
        // Same top-bit dead-zone structure as the mod-a case.
        assert_eq!(bound.worst_sa1, 33);
    }
}
