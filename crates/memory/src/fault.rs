//! The unified fault universe of the self-checking memory: **where** a
//! fault strikes ([`FaultSite`]) and **when/how it manifests over time**
//! ([`FaultProcess`]).
//!
//! Single-fault assumption, as throughout the self-checking literature: one
//! fault at a time, anywhere in the design — storage cells, either decoder,
//! either NOR matrix, or the data register. A [`FaultScenario`] pairs a
//! site with a temporal process; `FaultProcess::Permanent { onset: 0 }` is
//! the classical injected-at-reset stuck-at the rest of the workspace grew
//! up on, and is the exact semantic identity of the historical
//! `Option<FaultSite>` contract.

use crate::decoder_unit::DecoderFault;
use std::fmt;

/// Every place a single stuck-at fault can strike the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// A storage cell pinned to a value.
    Cell {
        /// Physical row.
        row: usize,
        /// Physical column (including the parity column group).
        col: usize,
        /// Stuck value.
        stuck: bool,
    },
    /// A fault inside the row decoder.
    RowDecoder(DecoderFault),
    /// A fault inside the column decoder.
    ColDecoder(DecoderFault),
    /// One programmed position of the row-decoder ROM flipped
    /// (missing/extra transistor): affects the emitted word only while the
    /// line is active.
    RowRomBit {
        /// Decoder line (row index).
        line: u64,
        /// Output bit position.
        bit: u32,
    },
    /// One programmed position of the column-decoder ROM flipped.
    ColRomBit {
        /// Decoder line (column-select index).
        line: u64,
        /// Output bit position.
        bit: u32,
    },
    /// A ROM output column stuck (broken pull-up / shorted column) on the
    /// row-decoder ROM.
    RowRomColumn {
        /// Output bit position.
        bit: u32,
        /// Stuck value.
        stuck: bool,
    },
    /// A ROM output column stuck on the column-decoder ROM.
    ColRomColumn {
        /// Output bit position.
        bit: u32,
        /// Stuck value.
        stuck: bool,
    },
    /// A data-register bit stuck (covers the read path after the MUX).
    DataRegisterBit {
        /// Bit position within the `m`-bit word.
        bit: u32,
        /// Stuck value.
        stuck: bool,
    },
}

impl FaultSite {
    /// Short class name for reporting.
    pub fn class(&self) -> &'static str {
        match self {
            FaultSite::Cell { .. } => "cell",
            FaultSite::RowDecoder(_) => "row-decoder",
            FaultSite::ColDecoder(_) => "col-decoder",
            FaultSite::RowRomBit { .. } => "row-rom-bit",
            FaultSite::ColRomBit { .. } => "col-rom-bit",
            FaultSite::RowRomColumn { .. } => "row-rom-col",
            FaultSite::ColRomColumn { .. } => "col-rom-col",
            FaultSite::DataRegisterBit { .. } => "data-register",
        }
    }
}

impl fmt::Display for FaultSite {
    /// The one human-readable site spelling every report shares (the
    /// `scm-diag` walkthrough and the campaign worst-offender lists used
    /// to re-derive these strings ad hoc).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn decoder(f: &mut fmt::Formatter<'_>, which: &str, d: &DecoderFault) -> fmt::Result {
            write!(
                f,
                "{which} block {}b@{} value {} stuck-at-{}",
                d.bits, d.offset, d.value, d.stuck_one as u8
            )
        }
        match self {
            FaultSite::Cell { row, col, stuck } => {
                write!(f, "cell (row {row}, col {col}, stuck-at-{})", *stuck as u8)
            }
            FaultSite::RowDecoder(d) => decoder(f, "row-decoder", d),
            FaultSite::ColDecoder(d) => decoder(f, "col-decoder", d),
            FaultSite::RowRomBit { line, bit } => {
                write!(f, "row-rom-bit (line {line}, bit {bit})")
            }
            FaultSite::ColRomBit { line, bit } => {
                write!(f, "col-rom-bit (line {line}, bit {bit})")
            }
            FaultSite::RowRomColumn { bit, stuck } => {
                write!(f, "row-rom-col (bit {bit}, stuck-at-{})", *stuck as u8)
            }
            FaultSite::ColRomColumn { bit, stuck } => {
                write!(f, "col-rom-col (bit {bit}, stuck-at-{})", *stuck as u8)
            }
            FaultSite::DataRegisterBit { bit, stuck } => {
                write!(f, "data-register (bit {bit}, stuck-at-{})", *stuck as u8)
            }
        }
    }
}

/// A storage-cell coordinate — the aggressor reference of a coupling
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef {
    /// Physical row.
    pub row: usize,
    /// Physical column (including the parity group).
    pub col: usize,
}

/// How a coupling defect corrupts its victim when the aggressor cell
/// transitions (the classical CFin / CFid taxonomy of March testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CouplingKind {
    /// Inversion coupling (CFin): any aggressor transition inverts the
    /// victim's stored value.
    Inversion,
    /// Idempotent coupling (CFid): any aggressor transition forces the
    /// victim to a fixed value.
    Idempotent {
        /// The value the victim is forced to.
        value: bool,
    },
}

/// The temporal law of a fault: when (and for how long) the defect at a
/// [`FaultSite`] actually manifests, on the cycle clock that starts at a
/// backend's `reset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultProcess {
    /// A hard defect pinned from `onset` onward. `onset = 0` is the
    /// classical injected-at-reset model.
    Permanent {
        /// First cycle the site is pinned.
        onset: u64,
    },
    /// A one-shot soft error at cycle `at`. On a storage cell this is a
    /// genuine state corruption — the stored bit is flipped once and a
    /// later rewrite (or the detect-and-restore of a scrub read) clears
    /// it; on a combinational site (decoder, ROM, register) it is a
    /// single-cycle glitch, pinned for exactly that cycle.
    TransientFlip {
        /// The cycle the upset strikes.
        at: u64,
    },
    /// A marginal contact: from `onset` onward the site is pinned for the
    /// first `duty` cycles of every `period`-cycle window and clean for
    /// the rest (`period = 0` degenerates to `Permanent { onset }`).
    Intermittent {
        /// First cycle of the first active window.
        onset: u64,
        /// Window length in cycles.
        period: u64,
        /// Active cycles per window.
        duty: u64,
    },
    /// A coupling defect: the scenario's (cell) site is the victim; every
    /// write transition of the aggressor cell corrupts it per `kind`.
    /// The defect exists from cycle 0 but its corruption is triggered by
    /// operation history, not by the clock.
    Coupling {
        /// The aggressor cell.
        aggressor: CellRef,
        /// Inversion or idempotent corruption.
        kind: CouplingKind,
    },
}

impl FaultProcess {
    /// The classical injected-at-reset model.
    pub const PERMANENT: FaultProcess = FaultProcess::Permanent { onset: 0 };

    /// Short class name for reporting and per-process splits.
    pub fn class(&self) -> &'static str {
        match self {
            FaultProcess::Permanent { .. } => "permanent",
            FaultProcess::TransientFlip { .. } => "transient",
            FaultProcess::Intermittent { .. } => "intermittent",
            FaultProcess::Coupling { .. } => "coupling",
        }
    }

    /// Is the scenario's site pinned (realised as a stuck-at) on `cycle`?
    /// This is the activation window both simulation backends honour; a
    /// `TransientFlip` on a storage cell is realised as a one-shot state
    /// flip instead (backends special-case it), and `Coupling` never pins
    /// — its corruption rides aggressor writes.
    pub fn pins_site_at(&self, cycle: u64) -> bool {
        match *self {
            FaultProcess::Permanent { onset } => cycle >= onset,
            FaultProcess::TransientFlip { at } => cycle == at,
            FaultProcess::Intermittent {
                onset,
                period,
                duty,
            } => cycle >= onset && (period == 0 || (cycle - onset) % period < duty.min(period)),
            FaultProcess::Coupling { .. } => false,
        }
    }

    /// The cycle the defect first *can* matter (`None` for coupling,
    /// whose manifestation depends on operation history).
    pub fn onset(&self) -> Option<u64> {
        match *self {
            FaultProcess::Permanent { onset } => Some(onset),
            FaultProcess::TransientFlip { at } => Some(at),
            FaultProcess::Intermittent { onset, .. } => Some(onset),
            FaultProcess::Coupling { .. } => None,
        }
    }

    /// The cycle state is *silently corrupted*, when the process has one:
    /// only a transient flip deposits an error into storage at a known
    /// instant before any output errs. Latency and Aupy-style lost-work
    /// accounting anchor here; every other process anchors at the first
    /// observed erroneous output (the paper's definition).
    pub fn corruption_onset(&self) -> Option<u64> {
        match *self {
            FaultProcess::TransientFlip { at } => Some(at),
            _ => None,
        }
    }
}

/// One fully specified fault: a site and the temporal process that
/// activates it. The unit every backend [`reset`] consumes and every
/// campaign grid enumerates.
///
/// [`reset`]: crate::backend::FaultSimBackend::reset
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultScenario {
    /// Where the fault strikes.
    pub site: FaultSite,
    /// When and how it manifests.
    pub process: FaultProcess,
}

impl FaultScenario {
    /// The classical scenario: `site` pinned from cycle 0 — the exact
    /// semantics of the historical `Option<FaultSite>` reset contract.
    pub fn permanent(site: FaultSite) -> Self {
        FaultScenario {
            site,
            process: FaultProcess::PERMANENT,
        }
    }

    /// A one-shot soft error on `site` at cycle `at`.
    pub fn transient(site: FaultSite, at: u64) -> Self {
        FaultScenario {
            site,
            process: FaultProcess::TransientFlip { at },
        }
    }

    /// Does the process corrupt *stored state* (rather than pinning a
    /// signal)? Such corruptions are recoverable: the behavioural model's
    /// detect-and-restore heals the word once an indication fires.
    pub fn corrupts_state(&self) -> bool {
        match self.process {
            FaultProcess::TransientFlip { .. } => matches!(self.site, FaultSite::Cell { .. }),
            FaultProcess::Coupling { .. } => true,
            _ => false,
        }
    }
}

impl From<FaultSite> for FaultScenario {
    fn from(site: FaultSite) -> Self {
        FaultScenario::permanent(site)
    }
}

impl fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.process {
            FaultProcess::Permanent { onset: 0 } => write!(f, "{}", self.site),
            FaultProcess::Permanent { onset } => {
                write!(f, "{} [permanent from {onset}]", self.site)
            }
            FaultProcess::TransientFlip { at } => write!(f, "{} [transient @ {at}]", self.site),
            FaultProcess::Intermittent {
                onset,
                period,
                duty,
            } => write!(
                f,
                "{} [intermittent from {onset}, {duty}/{period}]",
                self.site
            ),
            FaultProcess::Coupling { aggressor, kind } => write!(
                f,
                "{} [coupled to ({}, {}), {}]",
                self.site,
                aggressor.row,
                aggressor.col,
                match kind {
                    CouplingKind::Inversion => "inversion".to_owned(),
                    CouplingKind::Idempotent { value } => format!("idempotent->{}", value as u8),
                }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_distinct() {
        let sites = [
            FaultSite::Cell {
                row: 0,
                col: 0,
                stuck: false,
            },
            FaultSite::RowDecoder(DecoderFault {
                bits: 1,
                offset: 0,
                value: 0,
                stuck_one: true,
            }),
            FaultSite::ColDecoder(DecoderFault {
                bits: 1,
                offset: 0,
                value: 0,
                stuck_one: false,
            }),
            FaultSite::RowRomBit { line: 0, bit: 0 },
            FaultSite::ColRomBit { line: 0, bit: 0 },
            FaultSite::RowRomColumn {
                bit: 0,
                stuck: true,
            },
            FaultSite::ColRomColumn {
                bit: 0,
                stuck: false,
            },
            FaultSite::DataRegisterBit {
                bit: 0,
                stuck: true,
            },
        ];
        let mut names: Vec<&str> = sites.iter().map(|s| s.class()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), sites.len());
        // Display strings are distinct too (they key report dictionaries).
        let mut displays: Vec<String> = sites.iter().map(|s| s.to_string()).collect();
        displays.sort_unstable();
        displays.dedup();
        assert_eq!(displays.len(), sites.len());
    }

    #[test]
    fn display_matches_the_diag_walkthrough_spelling() {
        let site = FaultSite::Cell {
            row: 6,
            col: 9,
            stuck: true,
        };
        assert_eq!(site.to_string(), "cell (row 6, col 9, stuck-at-1)");
    }

    #[test]
    fn sites_are_orderable_and_hashable() {
        let mut sites = [
            FaultSite::DataRegisterBit {
                bit: 1,
                stuck: true,
            },
            FaultSite::Cell {
                row: 1,
                col: 2,
                stuck: false,
            },
            FaultSite::Cell {
                row: 0,
                col: 9,
                stuck: true,
            },
        ];
        sites.sort();
        assert_eq!(
            sites[0],
            FaultSite::Cell {
                row: 0,
                col: 9,
                stuck: true
            },
            "cells order before register bits, row-major"
        );
        let set: std::collections::HashSet<FaultSite> = sites.iter().copied().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn permanent_zero_is_the_identity_process() {
        let p = FaultProcess::PERMANENT;
        for cycle in [0u64, 1, 7, 1_000_000] {
            assert!(p.pins_site_at(cycle));
        }
        assert_eq!(p.onset(), Some(0));
        assert_eq!(p.corruption_onset(), None);
        assert_eq!(p.class(), "permanent");
    }

    #[test]
    fn activation_windows() {
        let late = FaultProcess::Permanent { onset: 5 };
        assert!(!late.pins_site_at(4));
        assert!(late.pins_site_at(5));

        let glitch = FaultProcess::TransientFlip { at: 3 };
        assert!(!glitch.pins_site_at(2));
        assert!(glitch.pins_site_at(3));
        assert!(!glitch.pins_site_at(4));
        assert_eq!(glitch.corruption_onset(), Some(3));

        let flaky = FaultProcess::Intermittent {
            onset: 2,
            period: 4,
            duty: 1,
        };
        let active: Vec<bool> = (0..10).map(|c| flaky.pins_site_at(c)).collect();
        assert_eq!(
            active,
            [false, false, true, false, false, false, true, false, false, false]
        );
        // Degenerate shapes cannot divide by zero or over-pin.
        assert!(FaultProcess::Intermittent {
            onset: 0,
            period: 0,
            duty: 0
        }
        .pins_site_at(9));
        assert!(FaultProcess::Intermittent {
            onset: 0,
            period: 3,
            duty: 9
        }
        .pins_site_at(2));

        let coupled = FaultProcess::Coupling {
            aggressor: CellRef { row: 0, col: 0 },
            kind: CouplingKind::Inversion,
        };
        assert!(!coupled.pins_site_at(0));
        assert_eq!(coupled.onset(), None);
    }

    #[test]
    fn scenario_state_classification() {
        let cell = FaultSite::Cell {
            row: 0,
            col: 0,
            stuck: true,
        };
        let reg = FaultSite::DataRegisterBit {
            bit: 0,
            stuck: true,
        };
        assert!(FaultScenario::transient(cell, 4).corrupts_state());
        assert!(!FaultScenario::transient(reg, 4).corrupts_state());
        assert!(!FaultScenario::permanent(cell).corrupts_state());
        let scenario: FaultScenario = cell.into();
        assert_eq!(scenario.process, FaultProcess::PERMANENT);
        assert_eq!(scenario.to_string(), "cell (row 0, col 0, stuck-at-1)");
    }
}
