//! Area models for the self-checking memory scheme.
//!
//! Two models, matching the paper's two kinds of numbers:
//!
//! * [`tech::TechnologyParams::att_04um_standard_cell`] + [`overhead`] —
//!   a structural model of the paper's AT&T 0.4 µm standard-cell
//!   evaluation. RAM area = cell array + periphery proportional to the
//!   array edges (row drivers, sense/column circuitry); checking hardware =
//!   NOR-matrix bits priced at a standard-cell-to-RAM-cell ratio plus
//!   checker gate counts taken from the actual emitted netlists. The two
//!   free constants are calibrated once against the paper's eighteen table
//!   cells (see DESIGN.md §6) and reproduce every cell within ~2 % — except
//!   the paper's own 2-out-of-4/32×4K outlier, which both its tables share.
//! * [`analytic`] — the paper's Section IV dense-macro formula
//!   `k(r1·2^s + r2·2^p)/(m·2^n)` with the worked 1K×16 example.
//!
//! [`tables`] drives both into the exact rows of Table 1 and Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod overhead;
pub mod ram_area;
pub mod repair_area;
pub mod sweep;
pub mod tables;
pub mod tech;

pub use overhead::{scheme_overhead, OverheadBreakdown};
pub use ram_area::{RamArea, RamOrganization};
pub use repair_area::{repair_overhead, RepairOverheadBreakdown};
pub use tables::{table1_rows, table2_rows, TableRow, PAPER_TABLE1, PAPER_TABLE2};
pub use tech::TechnologyParams;
