//! Spare-row / spare-column repair.
//!
//! Repair closes the loop the paper leaves open: a localized fault is
//! *remapped* onto redundant hardware so the design returns to service.
//! Two mechanisms, mirroring embedded-SRAM practice:
//!
//! * **spare row** — a full extra physical row with a programmable
//!   address match. Repairing row `R` steers every access of `R` onto the
//!   spare; the spare's decoder line is programmed with its own codeword
//!   through the generalised [`CodewordMap::with_remap`] machinery
//!   (preferring a previously unused rank, [`CodewordMap::spare_rank`],
//!   so the checker's codeword diet grows rather than aliasing a mission
//!   line);
//! * **spare column** — an extra physical column; the faulty column's bit
//!   is steered onto it for every row.
//!
//! The allocator works on **ambiguity sets**, not single sites: a repair
//! is only sound when one spare covers *every* candidate the diagnosis
//! could not distinguish. Same-word cell candidates always share a
//! physical row, so row repair handles the common ambiguity shape; a
//! full-block stuck-at-0 row-decoder line (which kills exactly one row)
//! is row-repairable too. Everything else — multi-row stuck-at-0 blocks,
//! stuck-at-1 double selections, ROM and data-register faults — is
//! honestly `Unrepairable` by spares: those need the checking path itself
//! replaced, not the storage.
//!
//! [`RepairedRam`] is the post-repair design as a [`FaultSimBackend`]:
//! the same campaign engines, March runners and differential oracles that
//! measured the faulty design re-measure the repaired one on identical
//! axes. Spare content is recovered from the pre-fault image on every
//! reset — the model's analogue of restoring from the last checkpoint
//! after a repair interrupt, whose cycle cost the system layer charges.

use crate::dictionary::Diagnosis;
use scm_codes::CodewordMap;
use scm_memory::backend::{CycleObservation, FaultSimBackend};
use scm_memory::design::{RamConfig, SelfCheckingRam, Verdict};
use scm_memory::fault::FaultSite;
use scm_memory::workload::Op;
use std::collections::BTreeMap;

/// Redundant hardware available to the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpareBudget {
    /// Spare rows.
    pub rows: u32,
    /// Spare columns.
    pub cols: u32,
}

impl SpareBudget {
    /// No redundancy: every diagnosis is `OutOfSpares` or `Unrepairable`.
    pub const NONE: SpareBudget = SpareBudget { rows: 0, cols: 0 };
}

/// One committed spare-row assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMove {
    /// The replaced (faulty) row.
    pub row: u64,
    /// Codeword rank programmed on the spare line.
    pub rank: u128,
}

/// The committed repair state: which rows and physical columns have been
/// moved onto spares.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairPlan {
    /// Spare-row assignments, allocation order.
    pub row_moves: Vec<RowMove>,
    /// Replaced physical columns, allocation order.
    pub col_moves: Vec<u64>,
}

impl RepairPlan {
    /// Is anything repaired at all?
    pub fn is_empty(&self) -> bool {
        self.row_moves.is_empty() && self.col_moves.is_empty()
    }
}

/// What one allocation attempt concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The ambiguity set is covered by a spare row replacing `row`.
    RepairedRow {
        /// The replaced row.
        row: u64,
    },
    /// The ambiguity set is covered by a spare column replacing `col`.
    RepairedColumn {
        /// The replaced physical column.
        col: u64,
    },
    /// Structurally repairable, but the budget is exhausted.
    OutOfSpares,
    /// No spare assignment can cover the ambiguity set.
    Unrepairable {
        /// Why (stable strings, used in reports).
        reason: &'static str,
    },
}

impl RepairOutcome {
    /// Did the attempt commit a repair?
    pub fn repaired(&self) -> bool {
        matches!(
            self,
            RepairOutcome::RepairedRow { .. } | RepairOutcome::RepairedColumn { .. }
        )
    }
}

/// The row a candidate fault confines itself to, when it has one.
fn affected_row(config: &RamConfig, site: &FaultSite) -> Option<u64> {
    match site {
        FaultSite::Cell { row, .. } => Some(*row as u64),
        FaultSite::RowDecoder(f)
            if !f.stuck_one && f.offset == 0 && f.bits == config.org().row_bits() =>
        {
            // Full-block stuck-at-0: exactly the one last-level line is
            // dead, so replacing that row's storage *and* steering its
            // address onto the spare line bypasses the dead driver.
            Some(f.value)
        }
        _ => None,
    }
}

/// The physical column a candidate confines itself to, when it has one.
fn affected_col(site: &FaultSite) -> Option<u64> {
    match site {
        FaultSite::Cell { col, .. } => Some(*col as u64),
        _ => None,
    }
}

/// Stateful spare allocator: tracks the committed plan against a budget.
#[derive(Debug, Clone)]
pub struct SpareAllocator {
    budget: SpareBudget,
    plan: RepairPlan,
}

impl SpareAllocator {
    /// Fresh allocator over a budget.
    pub fn new(budget: SpareBudget) -> Self {
        SpareAllocator {
            budget,
            plan: RepairPlan::default(),
        }
    }

    /// The committed plan so far.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// Try to cover a diagnosis with one spare. Row repair is preferred
    /// (it covers every same-row ambiguity shape); column repair is the
    /// fallback when rows are exhausted and the set shares one physical
    /// column.
    pub fn allocate(&mut self, config: &RamConfig, diagnosis: &Diagnosis) -> RepairOutcome {
        if diagnosis.candidates.is_empty() {
            return RepairOutcome::Unrepairable {
                reason: "empty ambiguity set",
            };
        }
        let rows: Option<Vec<u64>> = diagnosis
            .candidates
            .iter()
            .map(|c| affected_row(config, c))
            .collect();
        let shared_row = rows.and_then(|rows| {
            let first = rows[0];
            rows.iter().all(|&r| r == first).then_some(first)
        });
        let cols: Option<Vec<u64>> = diagnosis.candidates.iter().map(affected_col).collect();
        let shared_col = cols.and_then(|cols| {
            let first = cols[0];
            cols.iter().all(|&c| c == first).then_some(first)
        });
        if shared_row.is_none() && shared_col.is_none() {
            return RepairOutcome::Unrepairable {
                reason: "ambiguity set not confined to one row or column",
            };
        }
        if let Some(row) = shared_row {
            if self.plan.row_moves.iter().any(|m| m.row == row) {
                return RepairOutcome::RepairedRow { row };
            }
            if (self.plan.row_moves.len() as u32) < self.budget.rows {
                let rank = self.spare_line_rank(config, row);
                self.plan.row_moves.push(RowMove { row, rank });
                return RepairOutcome::RepairedRow { row };
            }
        }
        if let Some(col) = shared_col {
            if self.plan.col_moves.contains(&col) {
                return RepairOutcome::RepairedColumn { col };
            }
            if (self.plan.col_moves.len() as u32) < self.budget.cols {
                self.plan.col_moves.push(col);
                return RepairOutcome::RepairedColumn { col };
            }
        }
        RepairOutcome::OutOfSpares
    }

    /// The codeword rank to program on the next spare line: the first
    /// rank unused by the map *including previously committed spares*,
    /// falling back to the replaced line's own rank when the code is
    /// exhausted (the spare then inherits the mission codeword — still a
    /// codeword, detection properties unchanged).
    fn spare_line_rank(&self, config: &RamConfig, row: u64) -> u128 {
        let map = repaired_row_map(config.row_map(), &self.plan.row_moves);
        map.spare_rank().unwrap_or_else(|| map.rank_for(row))
    }
}

/// The row map with every committed spare line programmed through
/// [`CodewordMap::with_remap`].
pub fn repaired_row_map(base: &CodewordMap, row_moves: &[RowMove]) -> CodewordMap {
    row_moves.iter().fold(base.clone(), |map, m| {
        map.with_remap(m.row, m.rank)
            .expect("committed moves carry validated ranks")
    })
}

/// The post-repair design: the faulty RAM with its committed spares, as
/// a [`FaultSimBackend`].
///
/// Accesses to a repaired row are served by the spare row (its line
/// checked through the re-programmed row map); reads crossing a repaired
/// physical column take that bit from the spare column, with the parity
/// check re-evaluated on the steered word. Everything else behaves as
/// the underlying twin-pair behavioural model. Valid under the
/// single-fault assumption for the repaired fault — the spare access
/// path is its own (fault-free) hardware.
#[derive(Debug, Clone)]
pub struct RepairedRam {
    base: SelfCheckingRam,
    plan: RepairPlan,
    row_map: CodewordMap,
    faulty: SelfCheckingRam,
    golden: SelfCheckingRam,
    /// Per repaired row: `(data, parity)` per column select.
    spare_rows: BTreeMap<u64, Vec<(u64, bool)>>,
    /// Per repaired physical column: one bit per row.
    spare_cols: BTreeMap<u64, Vec<bool>>,
}

impl RepairedRam {
    /// Repaired design over an explicitly prepared pre-fault state.
    pub fn new(base: SelfCheckingRam, plan: RepairPlan) -> Self {
        let row_map = repaired_row_map(base.config().row_map(), &plan.row_moves);
        let mut ram = RepairedRam {
            faulty: base.clone(),
            golden: base.clone(),
            base,
            plan,
            row_map,
            spare_rows: BTreeMap::new(),
            spare_cols: BTreeMap::new(),
        };
        ram.recover();
        ram
    }

    /// Repaired design whose pre-fault state is the campaign convention's
    /// deterministic random fill — **bit-identical** to
    /// `BehavioralBackend::prefilled` with the same seed, by reusing it:
    /// the system scheduler hands a repaired bank exactly the image the
    /// plain bank was instantiated from.
    pub fn prefilled(config: &RamConfig, seed: u64, plan: RepairPlan) -> Self {
        let backend = scm_memory::backend::BehavioralBackend::prefilled(config, seed);
        // `faulty()` before any reset/step is the pristine prefill image.
        RepairedRam::new(backend.faulty().clone(), plan)
    }

    /// The committed plan.
    pub fn plan(&self) -> &RepairPlan {
        &self.plan
    }

    /// The re-programmed row map (spare lines included).
    pub fn row_map(&self) -> &CodewordMap {
        &self.row_map
    }

    /// Restore spare content from the pre-fault image — the model's
    /// checkpoint-recovery step after a repair interrupt.
    fn recover(&mut self) {
        let org = self.base.config().org();
        let mux = org.mux_factor() as u64;
        let m = org.word_bits();
        self.spare_rows = self
            .plan
            .row_moves
            .iter()
            .map(|mv| {
                let slots = (0..mux)
                    .map(|col_sel| {
                        let out = self.base.read(mv.row * mux + col_sel);
                        (out.data, out.parity_bit)
                    })
                    .collect();
                (mv.row, slots)
            })
            .collect();
        self.spare_cols = self
            .plan
            .col_moves
            .iter()
            .map(|&col| {
                let col_sel = col % mux;
                let bit_group = (col / mux) as u32;
                let bits = (0..org.rows())
                    .map(|row| {
                        let out = self.base.read(row * mux + col_sel);
                        if bit_group == m {
                            out.parity_bit
                        } else {
                            out.data >> bit_group & 1 == 1
                        }
                    })
                    .collect();
                (col, bits)
            })
            .collect();
    }

    fn word_mask(&self) -> u64 {
        let m = self.base.config().org().word_bits();
        if m >= 64 {
            u64::MAX
        } else {
            (1u64 << m) - 1
        }
    }

    /// Verdict of a spare-row access: the spare line's word comes from
    /// the re-programmed map, so the row check is evaluated for real —
    /// it reads clean because the programmed word *is* a codeword.
    fn spare_row_verdict(&self, row: u64) -> Verdict {
        Verdict {
            row_code_error: !self.row_map.is_codeword(self.row_map.codeword_for(row)),
            col_code_error: false,
            parity_error: false,
        }
    }

    fn step_spare_row(&mut self, row: u64, col_sel: u64, op: Op) -> CycleObservation {
        let mask = self.word_mask();
        match op {
            Op::Write(addr, value) => {
                let data = value & mask;
                let parity = data.count_ones() % 2 == 1;
                self.spare_rows.get_mut(&row).expect("repaired row")[col_sel as usize] =
                    (data, parity);
                let _ = self.golden.write(addr, value);
                CycleObservation {
                    erroneous: Some(false),
                    verdict: self.spare_row_verdict(row),
                }
            }
            Op::Read(addr) => {
                let (data, parity) = self.spare_rows[&row][col_sel as usize];
                let g = self.golden.read(addr);
                let mut verdict = self.spare_row_verdict(row);
                verdict.parity_error = (data.count_ones() + parity as u32) % 2 == 1;
                CycleObservation {
                    erroneous: Some(data != g.data || parity != g.parity_bit),
                    verdict,
                }
            }
        }
    }

    fn step_main(&mut self, row: u64, col_sel: u64, op: Op) -> CycleObservation {
        let org = self.base.config().org();
        let mux = org.mux_factor() as u64;
        let m = org.word_bits();
        match op {
            Op::Write(addr, value) => {
                let verdict = self.faulty.write(addr, value);
                let _ = self.golden.write(addr, value);
                let data = value & self.word_mask();
                for (&col, bits) in self.spare_cols.iter_mut() {
                    if col % mux != col_sel {
                        continue;
                    }
                    let bit_group = (col / mux) as u32;
                    bits[row as usize] = if bit_group == m {
                        data.count_ones() % 2 == 1
                    } else {
                        data >> bit_group & 1 == 1
                    };
                }
                CycleObservation {
                    erroneous: Some(false),
                    verdict,
                }
            }
            Op::Read(addr) => {
                let f = self.faulty.read(addr);
                let g = self.golden.read(addr);
                let mut data = f.data;
                let mut parity = f.parity_bit;
                let mut steered = false;
                for (&col, bits) in self.spare_cols.iter() {
                    if col % mux != col_sel {
                        continue;
                    }
                    let bit_group = (col / mux) as u32;
                    let bit = bits[row as usize];
                    if bit_group == m {
                        parity = bit;
                    } else if bit {
                        data |= 1u64 << bit_group;
                    } else {
                        data &= !(1u64 << bit_group);
                    }
                    steered = true;
                }
                let mut verdict = f.verdict;
                if steered {
                    verdict.parity_error = (data.count_ones() + parity as u32) % 2 == 1;
                }
                CycleObservation {
                    erroneous: Some(data != g.data || parity != g.parity_bit),
                    verdict,
                }
            }
        }
    }
}

impl FaultSimBackend for RepairedRam {
    fn name(&self) -> &'static str {
        "repaired-behavioral"
    }

    fn config(&self) -> &RamConfig {
        self.base.config()
    }

    fn supports(&self, scenario: &scm_memory::fault::FaultScenario) -> bool {
        // Repaired designs are re-verified under the classical model:
        // repair addresses hard defects, so the mission oracle replays
        // exactly the injected-at-reset contract.
        matches!(
            scenario.process,
            scm_memory::fault::FaultProcess::Permanent { onset: 0 }
        )
    }

    fn reset(&mut self, scenario: Option<&scm_memory::fault::FaultScenario>) {
        if let Some(s) = scenario {
            assert!(
                self.supports(s),
                "RepairedRam realises only permanent injected-at-reset faults"
            );
        }
        self.faulty = self.base.clone();
        if let Some(s) = scenario {
            self.faulty.inject(s.site);
        }
        self.golden = self.base.clone();
        self.recover();
    }

    fn step(&mut self, op: Op) -> CycleObservation {
        let (row, col_sel) = self.base.config().split_address(op.addr());
        if self.spare_rows.contains_key(&row) {
            self.step_spare_row(row, col_sel, op)
        } else {
            self.step_main(row, col_sel, op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{cell_universe, FaultDictionary};
    use crate::march::{run_march, MarchTest};
    use scm_area::RamOrganization;
    use scm_codes::MOutOfN;
    use scm_memory::backend::BehavioralBackend;
    use scm_memory::decoder_unit::DecoderFault;

    fn config() -> RamConfig {
        let org = RamOrganization::new(64, 8, 4);
        let code = MOutOfN::new(3, 5).unwrap();
        RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, 16).unwrap(),
            CodewordMap::mod_a(code, 9, 4).unwrap(),
        )
    }

    fn dictionary() -> &'static FaultDictionary {
        static DICT: std::sync::OnceLock<FaultDictionary> = std::sync::OnceLock::new();
        DICT.get_or_init(|| {
            let cfg = config();
            let mut candidates = cell_universe(&cfg);
            candidates.extend(
                scm_memory::campaign::decoder_fault_universe(4)
                    .into_iter()
                    .map(FaultSite::RowDecoder),
            );
            FaultDictionary::build(&cfg, &MarchTest::march_c_minus(), 5, &candidates, 0)
        })
    }

    fn diagnose(site: FaultSite) -> (&'static FaultDictionary, Diagnosis) {
        let dict = dictionary();
        let mut backend = BehavioralBackend::new(dict.config());
        backend.reset_site(Some(site));
        let d = dict.diagnose_session(&mut backend);
        (dict, d)
    }

    #[test]
    fn cell_fault_allocates_a_row_spare_with_a_fresh_codeword() {
        let cfg = config();
        let site = FaultSite::Cell {
            row: 6,
            col: 9,
            stuck: true,
        };
        let (_, diagnosis) = diagnose(site);
        assert!(diagnosis.contains(&site));
        let mut alloc = SpareAllocator::new(SpareBudget { rows: 2, cols: 1 });
        let outcome = alloc.allocate(&cfg, &diagnosis);
        assert_eq!(outcome, RepairOutcome::RepairedRow { row: 6 });
        let mv = alloc.plan().row_moves[0];
        // 16 lines under a = 9 + completion fix use ranks {0..=9}\{...}:
        // the spare must take the first genuinely unused rank.
        let map = repaired_row_map(cfg.row_map(), alloc.plan().row_moves.as_slice());
        assert!(map.is_codeword(map.codeword_for(mv.row)));
        assert_eq!(map.rank_for(6), mv.rank);
    }

    #[test]
    fn budget_exhaustion_and_foreign_classes_are_reported() {
        let cfg = config();
        let (_, d1) = diagnose(FaultSite::Cell {
            row: 1,
            col: 0,
            stuck: true,
        });
        let (_, d2) = diagnose(FaultSite::Cell {
            row: 2,
            col: 0,
            stuck: true,
        });
        let mut alloc = SpareAllocator::new(SpareBudget { rows: 1, cols: 0 });
        assert!(alloc.allocate(&cfg, &d1).repaired());
        assert_eq!(alloc.allocate(&cfg, &d2), RepairOutcome::OutOfSpares);
        // A stuck-at-1 double selection is not spare-repairable.
        let (_, d3) = diagnose(FaultSite::RowDecoder(DecoderFault {
            bits: 4,
            offset: 0,
            value: 3,
            stuck_one: true,
        }));
        assert!(matches!(
            alloc.allocate(&cfg, &d3),
            RepairOutcome::Unrepairable { .. }
        ));
    }

    #[test]
    fn full_block_sa0_row_line_is_row_repairable() {
        let cfg = config();
        let site = FaultSite::RowDecoder(DecoderFault {
            bits: 4,
            offset: 0,
            value: 11,
            stuck_one: false,
        });
        let (_, diagnosis) = diagnose(site);
        assert!(diagnosis.contains(&site), "{:?}", diagnosis.candidates);
        let mut alloc = SpareAllocator::new(SpareBudget { rows: 1, cols: 0 });
        assert_eq!(
            alloc.allocate(&cfg, &diagnosis),
            RepairOutcome::RepairedRow { row: 11 }
        );
    }

    #[test]
    fn repaired_row_serves_reads_and_writes_cleanly() {
        let cfg = config();
        let site = FaultSite::Cell {
            row: 6,
            col: 9,
            stuck: true,
        };
        let plan = RepairPlan {
            row_moves: vec![RowMove { row: 6, rank: 9 }],
            col_moves: vec![],
        };
        let mut ram = RepairedRam::prefilled(&cfg, 0xF00D, plan);
        ram.reset_site(Some(site));
        // The repaired row round-trips through the spare.
        for col_sel in 0..4u64 {
            let addr = 6 * 4 + col_sel;
            let obs = ram.step(Op::Write(addr, 0xA5 ^ col_sel));
            assert!(!obs.detected());
            let obs = ram.step(Op::Read(addr));
            assert_eq!(obs.erroneous, Some(false), "col {col_sel}");
            assert!(!obs.detected());
        }
        // Unrelated rows still behave like the plain twin pair.
        let obs = ram.step(Op::Read(3));
        assert_eq!(obs.erroneous, Some(false));
        assert!(!obs.detected());
    }

    #[test]
    fn post_repair_march_is_clean_and_mission_oracle_sees_no_escapes() {
        let cfg = config();
        let site = FaultSite::Cell {
            row: 6,
            col: 9,
            stuck: true,
        };
        let plan = RepairPlan {
            row_moves: vec![RowMove { row: 6, rank: 9 }],
            col_moves: vec![],
        };
        let mut ram = RepairedRam::prefilled(&cfg, 0xF00D, plan);
        ram.reset_site(Some(site));
        let log = run_march(&mut ram, &MarchTest::march_c_minus(), 17);
        assert!(log.clean(), "{:?}", log.events.first());
        // The original mission differential oracle: zero error escapes.
        let campaign = scm_memory::campaign::CampaignConfig {
            cycles: 200,
            trials: 4,
            seed: 3,
            write_fraction: 0.1,
        };
        let result = scm_memory::engine::CampaignEngine::new(campaign).run_on(&ram, &[site]);
        assert_eq!(result.per_fault[0].error_escapes, 0);
        assert_eq!(result.per_fault[0].detected, 0, "repaired design is silent");
    }

    #[test]
    fn column_repair_steers_the_faulty_bit() {
        let cfg = config();
        // Stuck-at-0 cell in physical column 9 = bit group 2, col-select 1.
        let site = FaultSite::Cell {
            row: 6,
            col: 9,
            stuck: false,
        };
        let plan = RepairPlan {
            row_moves: vec![],
            col_moves: vec![9],
        };
        let mut ram = RepairedRam::prefilled(&cfg, 0xF00D, plan);
        ram.reset_site(Some(site));
        let addr = 6 * 4 + 1;
        let obs = ram.step(Op::Write(addr, 0xFF));
        assert!(!obs.detected());
        let obs = ram.step(Op::Read(addr));
        assert_eq!(
            obs.erroneous,
            Some(false),
            "spare column must mask the cell"
        );
        assert!(!obs.detected());
        // Full March stays clean too.
        ram.reset_site(Some(site));
        let log = run_march(&mut ram, &MarchTest::mats_plus(), 8);
        assert!(log.clean(), "{:?}", log.events.first());
    }

    #[test]
    fn reset_restores_spare_content_from_the_recovery_image() {
        let cfg = config();
        let plan = RepairPlan {
            row_moves: vec![RowMove { row: 2, rank: 9 }],
            col_moves: vec![],
        };
        let mut ram = RepairedRam::prefilled(&cfg, 0xBEE, plan);
        ram.reset(None);
        let obs = ram.step(Op::Read(2 * 4));
        assert_eq!(obs.erroneous, Some(false));
        let before = ram.spare_rows[&2][0];
        let _ = ram.step(Op::Write(2 * 4, 0x5A));
        ram.reset(None);
        assert_eq!(ram.spare_rows[&2][0], before, "reset must undo writes");
    }

    #[test]
    fn repaired_ram_keeps_the_engine_determinism_contract() {
        let cfg = config();
        let site = FaultSite::Cell {
            row: 1,
            col: 3,
            stuck: true,
        };
        let plan = RepairPlan {
            row_moves: vec![RowMove { row: 1, rank: 9 }],
            col_moves: vec![],
        };
        let ram = RepairedRam::prefilled(&cfg, 7, plan);
        let campaign = scm_memory::campaign::CampaignConfig {
            cycles: 40,
            trials: 8,
            seed: 21,
            write_fraction: 0.1,
        };
        let reference = scm_memory::engine::CampaignEngine::new(campaign)
            .threads(1)
            .run_on(&ram, &[site]);
        for threads in [2usize, 4] {
            let result = scm_memory::engine::CampaignEngine::new(campaign)
                .threads(threads)
                .run_on(&ram, &[site]);
            assert_eq!(
                reference.determinism_profile(),
                result.determinism_profile(),
                "{threads} threads"
            );
        }
    }
}
