//! The exploration layer end to end: sweep a design space, adjudicate a
//! slice of it empirically, and print the Pareto frontier your
//! requirements can be picked from.
//!
//! Run: `cargo run --release --example design_space`

use scm_explore::{pareto_front, Adjudication, Evaluator, ExplorationSpace, FaultMix, ScrubPolicy};
use self_checking_memory_repro::area::RamOrganization;
use self_checking_memory_repro::codes::selection::SelectionPolicy;
use self_checking_memory_repro::memory::campaign::CampaignConfig;

fn main() {
    // An embedded 2K×16 RAM; the open question is which (c, Pndc) points
    // are worth their area.
    let space = ExplorationSpace {
        geometries: vec![RamOrganization::with_mux8(2048, 16)],
        cycles: vec![2, 5, 10, 20, 30, 40],
        pndcs: vec![1e-5, 1e-9, 1e-15],
        policies: vec![SelectionPolicy::WorstBlockExact],
        scrubs: vec![ScrubPolicy::SequentialSweep],
        workloads: vec!["uniform".to_owned(), "hotspot".to_owned()],
        banks: vec![1],
        checkpoints: vec![0],
        repairs: vec![scm_explore::RepairPolicy::OFF],
        fault_mixes: vec![FaultMix::Permanent],
    };

    let evaluator = Evaluator::default().adjudicate(Adjudication {
        campaign: CampaignConfig {
            cycles: 10,
            trials: 8,
            seed: 0xD5,
            write_fraction: 0.1,
        },
        max_faults: 32,
        scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
        sliced: false,
        lane_width: 512,
    });

    let evaluations: Vec<_> = evaluator
        .evaluate_space(&space)
        .into_iter()
        .filter_map(Result::ok)
        .collect();
    println!(
        "evaluated {} points ({} sub-results served from the memo)",
        evaluations.len(),
        evaluator.cache_stats().hits()
    );
    println!();
    println!("Pareto front (area % / latency c / achieved Pndc):");
    for e in pareto_front(&evaluations) {
        let emp = e.empirical.expect("adjudication was on");
        let sweep = e.scrub_bound.expect("scrub was on");
        println!(
            "  {:<44} {:<12} {:>6.2} %  Pndc {:.2e}  wrst-err-esc {:.3}  sweep≤{}",
            e.point.label(),
            e.plan.code_name(),
            e.area_percent(),
            e.achieved_pndc,
            emp.worst_error_escape,
            sweep.worst_steps
        );
    }
    println!();
    println!("every row is a defensible design: nothing evaluated is cheaper AND");
    println!("faster AND safer. The scrub bound is the hard (non-probabilistic)");
    println!("companion guarantee a background sweep adds.");
}
