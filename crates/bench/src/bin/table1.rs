//! Regenerate the paper's **Table 1**: codes and % hardware increase for
//! `c ∈ {2, 5, 10, 20, 30, 40}` at `Pndc = 1e-9` on the three AT&T
//! embedded RAMs.
//!
//! Run: `cargo run -p scm-bench --bin table1`

fn main() {
    print!("{}", scm_bench::table1_report());
    println!("notes:");
    println!("  'CHEAPER' rows: our policy proves a smaller code already meets the");
    println!("  budget (see DESIGN.md §5 — the paper's two tables are internally");
    println!("  inconsistent about the selection formula; both policies shown).");
}
