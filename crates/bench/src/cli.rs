//! The `scm` command-line interface: every exploration-backed experiment
//! behind one binary.
//!
//! ```text
//! scm table1                      regenerate the paper's Table 1
//! scm table2                      regenerate the paper's Table 2
//! scm pareto [--policy P]         area-vs-latency sweep, CSV on stdout
//! scm ablations                   design-choice ablations
//! scm explore [options]           free design-space exploration
//! scm campaign [options]          fault campaign under a chosen workload
//! scm system [options]            sharded multi-bank system campaign
//! scm diag [options]              March BIST diagnosis + spare repair
//! scm fleet [options]             fleet-scale streaming campaign over cohorts
//! ```
//!
//! Subcommands are thin wrappers over `scm-explore`'s [`Evaluator`]; the
//! `table1`/`table2`/`pareto` stdout is byte-stable (pinned by
//! `tests/cli_fixtures.rs`) so recorded experiment outputs never drift
//! silently.

use scm_area::ram_area::paper_rams;
use scm_area::RamOrganization;
use scm_codes::mapping::MappingKind;
use scm_codes::selection::SelectionPolicy;
use scm_codes::{CodewordMap, MOutOfN};
use scm_core::SelfCheckingRamBuilder;
use scm_diag::{
    cell_universe, diag_report, run_session, DiagnosisCampaign, FaultDictionary, MarchTest,
    SpareBudget,
};
use scm_explore::{
    pareto_front, Adjudication, DesignPoint, Evaluator, ExplorationSpace, FaultMix, GuidedConfig,
    GuidedSearch, ScrubPolicy,
};
use scm_fleet::{FleetDriver, FleetOptions, FleetProgress, FleetSpec, PRESET_NAMES};
use scm_latency::distribution::analyze_decoder;
use scm_latency::goal::classify;
use scm_logic::stats::gate_stats;
use scm_logic::Netlist;
use scm_memory::campaign::{
    decoder_fault_universe, intermittent_universe, mixed_universe, transient_universe,
    CampaignConfig,
};
use scm_memory::design::RamConfig;
use scm_memory::engine::CampaignEngine;
use scm_memory::fault::{FaultScenario, FaultSite};
use scm_memory::report::{summary, worst_offenders};
use scm_memory::sliced::MAX_SLAB_LANES;
use scm_memory::workload::{model_by_name, MODEL_NAMES};
use scm_obs::{chrome_trace, parse_trace, trace_text, Event, Metrics, Profiler};
use scm_system::diag::{DiagCampaign, DiagPolicy};
use scm_system::{system_report, Interleaving, SeuProcess, SystemCampaign, SystemConfig};
use std::fmt::Write;

/// Run a parsed command line (program name stripped); returns the stdout
/// text to print. Errors carry a user-facing message (usage included for
/// unknown commands).
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let flags = Flags(&args[1..]);
    match command.as_str() {
        "table1" => {
            flags.validate(&[], &[], &[])?;
            Ok(table1_stdout())
        }
        "table2" => {
            flags.validate(&[], &[], &[])?;
            Ok(table2_stdout())
        }
        "pareto" => {
            flags.validate(&["--policy"], &[], &[])?;
            Ok(pareto_stdout(
                flags.policy_or(SelectionPolicy::WorstBlockExact)?,
            ))
        }
        "ablations" => {
            flags.validate(&[], &[], &[])?;
            Ok(ablations_stdout())
        }
        "explore" => {
            flags.validate(
                &[
                    "--policy",
                    "--workload",
                    "--scrub",
                    "--trials",
                    "--threads",
                    "--fault-mix",
                    "--engine",
                    "--lane-width",
                    "--budget",
                    "--space",
                ],
                &["--adjudicate", "--guided", "--metrics", "--profile"],
                &["--trace"],
            )?;
            // --budget and --space only mean something to the guided
            // search, so either switches it on rather than being
            // silently ignored. The same goes for --trace/--metrics:
            // rung prunes are explore's only event source.
            if flags.has("--guided")
                || flags.value_of("--budget").is_some()
                || flags.value_of("--space").is_some()
                || flags.optional_value("--trace").is_some()
                || flags.has("--metrics")
            {
                guided_stdout(&flags)
            } else {
                explore_stdout(&flags)
            }
        }
        "campaign" => {
            flags.validate(
                &[
                    "--workload",
                    "--trials",
                    "--cycles",
                    "--seed",
                    "--threads",
                    "--fault-model",
                    "--scrub-period",
                    "--engine",
                    "--lane-width",
                ],
                &["--metrics", "--profile"],
                &["--trace"],
            )?;
            campaign_stdout(&flags)
        }
        "system" => {
            flags.validate(
                &[
                    "--workload",
                    "--trials",
                    "--cycles",
                    "--seed",
                    "--threads",
                    "--interleave",
                    "--scrub-period",
                    "--checkpoint",
                    "--fault-model",
                    "--seu-mean",
                    "--engine",
                    "--lane-width",
                ],
                &["--metrics", "--profile"],
                &["--trace"],
            )?;
            system_stdout(&flags)
        }
        "diag" => {
            flags.validate(
                &[
                    "--march",
                    "--spare-rows",
                    "--spare-cols",
                    "--trials",
                    "--cycles",
                    "--seed",
                    "--threads",
                    "--fault-model",
                    "--engine",
                    "--lane-width",
                ],
                &["--metrics", "--profile"],
                &["--trace"],
            )?;
            diag_stdout(&flags)
        }
        "fleet" => {
            flags.validate(
                &[
                    "--preset",
                    "--spec",
                    "--devices",
                    "--seed",
                    "--threads",
                    "--engine",
                    "--lane-width",
                    "--checkpoint-every",
                    "--checkpoint",
                    "--resume",
                    "--halt-after",
                    "--json",
                ],
                &["--metrics", "--profile"],
                &["--trace"],
            )?;
            fleet_stdout(&flags)
        }
        "trace" => trace_stdout(&args[1..]),
        "--version" | "-V" => {
            flags.validate(&[], &[], &[])?;
            Ok(version())
        }
        "--help" | "-h" | "help" => Ok(usage()),
        other => {
            let hint = match suggest_subcommand(other) {
                Some(known) => format!(" (did you mean '{known}'?)"),
                None => String::new(),
            };
            Err(format!("unknown subcommand '{other}'{hint}\n\n{}", usage()))
        }
    }
}

/// Every dispatchable subcommand, for the did-you-mean hint.
const SUBCOMMANDS: [&str; 11] = [
    "table1",
    "table2",
    "pareto",
    "ablations",
    "explore",
    "campaign",
    "system",
    "diag",
    "fleet",
    "trace",
    "help",
];

/// `scm --version`: the crate version plus the pinned toolchain
/// channel, so a bug report pins the exact build recipe in one line.
fn version() -> String {
    let toolchain = include_str!("../../../rust-toolchain.toml")
        .lines()
        .find_map(|line| {
            line.split_once('=')
                .filter(|(key, _)| key.trim() == "channel")
                .map(|(_, value)| value.trim().trim_matches('"').to_owned())
        })
        .unwrap_or_else(|| "unknown".to_owned());
    format!(
        "scm {} (rust toolchain {toolchain})\n",
        env!("CARGO_PKG_VERSION")
    )
}

/// Closest candidate within a small edit distance (Levenshtein ≤ 2,
/// capped below the candidate's own length so short names never match
/// unrelated garbage) — the shared did-you-mean engine for subcommands,
/// workload models and March tests.
fn suggest<'a>(input: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    candidates
        .into_iter()
        .map(|known| (edit_distance(input, known), known))
        .filter(|&(d, known)| d <= 2.min(known.len().saturating_sub(1)))
        .min_by_key(|&(d, _)| d)
        .map(|(_, known)| known)
}

/// Closest known subcommand, so a typo like `sytem` points at `system`
/// instead of a bare usage dump.
fn suggest_subcommand(input: &str) -> Option<&'static str> {
    suggest(input, SUBCOMMANDS)
}

/// Temporal fault models the `campaign` subcommand injects.
const FAULT_MODELS: [&str; 4] = ["permanent", "transient", "intermittent", "mix"];

/// Resolve `--fault-model` against an allowed subset of [`FAULT_MODELS`],
/// with the shared did-you-mean hint.
fn fault_model_or_default<'a>(flags: &'a Flags, allowed: &[&'a str]) -> Result<&'a str, String> {
    let name = flags.value_of("--fault-model").unwrap_or("permanent");
    if allowed.contains(&name) {
        return Ok(name);
    }
    let hint = match suggest(name, allowed.iter().copied()) {
        Some(known) => format!(" (did you mean '{known}'?)"),
        None => String::new(),
    };
    Err(format!(
        "unknown fault model '{name}'{hint} (one of: {})",
        allowed.join(", ")
    ))
}

/// Resolve `--engine`: `scalar` (the differential-oracle path) or
/// `sliced` (the 64-lane bit-parallel fast path). `default_sliced` is
/// what an absent flag means: the campaign/system/diag/fleet
/// subcommands default to `sliced` (strictly faster there — ROADMAP
/// item 1), while the exhaustive explore keeps the scalar default its
/// adjudicated gate path is pinned against. Byte-pinned fixtures pass
/// `--engine scalar` explicitly.
fn engine_choice(flags: &Flags, default_sliced: bool) -> Result<bool, String> {
    match flags.value_of("--engine") {
        None => Ok(default_sliced),
        Some("scalar") => Ok(false),
        Some("sliced") => Ok(true),
        Some(other) => {
            let hint = match suggest(other, ["scalar", "sliced"]) {
                Some(known) => format!(" (did you mean '{known}'?)"),
                None => String::new(),
            };
            Err(format!("unknown engine '{other}'{hint} (scalar | sliced)"))
        }
    }
}

/// Resolve `--lane-width`: scenarios packed per sliced simulation pass
/// (`1..=`[`MAX_SLAB_LANES`], default the maximum). Pure scheduling,
/// like `--threads`: results are bit-identical at every width, so only
/// the `occupancy:` line (and the wall clock) can tell widths apart.
fn lane_width_flag(flags: &Flags) -> Result<usize, String> {
    let width: usize = flags.parsed("--lane-width", MAX_SLAB_LANES)?;
    if width == 0 || width > MAX_SLAB_LANES {
        return Err(format!(
            "--lane-width must be between 1 and {MAX_SLAB_LANES}, got {width}"
        ));
    }
    Ok(width)
}

/// The uniform unknown-workload message: did-you-mean hint first (when a
/// model name is within edit distance 2), the full list always.
fn unknown_workload(name: &str) -> String {
    let hint = match suggest(name, MODEL_NAMES) {
        Some(known) => format!(" (did you mean '{known}'?)"),
        None => String::new(),
    };
    format!(
        "unknown workload '{name}'{hint} (one of: {})",
        MODEL_NAMES.join(", ")
    )
}

/// Levenshtein distance (inserts, deletes, substitutions all cost 1).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            row.push(subst.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// Usage text.
pub fn usage() -> String {
    format!(
        "scm — self-checking-memory experiment driver\n\
         \n\
         subcommands:\n\
         \x20 table1                     regenerate the paper's Table 1 (both policies)\n\
         \x20 table2                     regenerate the paper's Table 2 (both policies)\n\
         \x20 pareto [--policy P]        area-vs-latency sweep, CSV on stdout\n\
         \x20 ablations                  design-choice ablations (odd-a, arity, completion fix)\n\
         \x20 explore [--policy P|both] [--workload W|all] [--scrub S] [--fault-mix M|all]\n\
         \x20         [--adjudicate] [--trials N (implies --adjudicate)] [--threads N]\n\
         \x20         [--engine E] [--lane-width L]\n\
         \x20                            design-space exploration + Pareto front(s)\n\
         \x20 explore --guided [--budget N] [--space worked|million] [--trials N]\n\
         \x20         [--threads N] [--engine E] [--lane-width L]\n\
         \x20                            budget-bounded multi-fidelity Pareto search\n\
         \x20                            (successive halving; --budget in scenario-trials,\n\
         \x20                            0 = unbounded; --budget/--space imply --guided)\n\
         \x20 campaign [--workload W] [--trials N] [--cycles C] [--seed S] [--threads N]\n\
         \x20          [--fault-model M] [--scrub-period P] [--engine E]\n\
         \x20          [--lane-width L]\n\
         \x20                            fault campaign on the 1Kx16 worked example\n\
         \x20 system [--workload W] [--trials N] [--cycles C] [--seed S] [--threads N]\n\
         \x20        [--interleave I] [--scrub-period P] [--checkpoint K]\n\
         \x20        [--fault-model permanent|transient] [--seu-mean G] [--engine E]\n\
         \x20        [--lane-width L]\n\
         \x20                            sharded multi-bank system campaign (scrubs +\n\
         \x20                            checkpoints competing with live traffic)\n\
         \x20 diag [--march T] [--spare-rows R] [--spare-cols C] [--trials N]\n\
         \x20      [--cycles C] [--seed S] [--threads N] [--fault-model permanent|transient]\n\
         \x20      [--engine E] [--lane-width L]\n\
         \x20                            March-BIST diagnosis, fault localization and\n\
         \x20                            spare repair, memory and system views\n\
         \x20 fleet [--preset P | --spec FILE] [--devices N] [--seed S] [--threads N]\n\
         \x20       [--engine E] [--lane-width L] [--checkpoint-every C] [--checkpoint PATH]\n\
         \x20       [--resume PATH] [--halt-after D] [--json PATH|-]\n\
         \x20                            fleet-scale streaming campaign over device\n\
         \x20                            cohorts: FIT rates, spare forecasts, SLO\n\
         \x20                            verdicts; kill-safe checkpoint/resume\n\
         \x20 trace summarize FILE       re-aggregate a saved trace into the metrics table\n\
         \x20 trace chrome FILE          re-export a saved trace as Chrome trace-event JSON\n\
         \x20 --version | -V             crate version + pinned toolchain\n\
         \n\
         observability (campaign | system | diag | fleet | explore):\n\
         \x20 --trace[=PATH]             deterministic event trace on the simulated clock\n\
         \x20                            (stdout, or PATH; bit-identical at any --threads\n\
         \x20                            and --engine; on explore implies --guided)\n\
         \x20 --metrics                  counter/histogram registry aggregated from the\n\
         \x20                            same events (fleet adds its telemetry fold)\n\
         \x20 --profile                  wall-clock phase spans ('profile:' lines,\n\
         \x20                            nondeterministic, filtered like 'memo:')\n\
         \n\
         policies:     worst-block-exact | inverse-a\n\
         presets:      {}\n\
         scrubs:       off | sequential-sweep\n\
         interleave:   low-order | high-order\n\
         engines:      scalar | sliced (up to 512 fault lanes per slab pass;\n\
         \x20             campaign/system/diag/fleet default to sliced, explore to scalar;\n\
         \x20             --lane-width caps scenarios packed per pass — pure scheduling,\n\
         \x20             results are bit-identical at every width)\n\
         fault models: permanent | transient | intermittent | mix\n\
         march tests:  {}\n\
         workloads:    {}\n",
        PRESET_NAMES.join(" | "),
        MarchTest::NAMES.join(" | "),
        MODEL_NAMES.join(" | ")
    )
}

struct Flags<'a>(&'a [String]);

impl Flags<'_> {
    /// Reject typos loudly: every token must be a recognised value flag
    /// (followed by its value), boolean flag, or optional-value flag
    /// (`--flag` or `--flag=value` in one token) — otherwise the run
    /// would silently proceed on defaults.
    fn validate(
        &self,
        value_flags: &[&str],
        bool_flags: &[&str],
        opt_value_flags: &[&str],
    ) -> Result<(), String> {
        let mut i = 0;
        while i < self.0.len() {
            let token = self.0[i].as_str();
            let inline_ok = token
                .split_once('=')
                .is_some_and(|(name, value)| opt_value_flags.contains(&name) && !value.is_empty());
            if value_flags.contains(&token) {
                if i + 1 >= self.0.len() {
                    return Err(format!("flag {token} is missing its value"));
                }
                i += 2;
            } else if bool_flags.contains(&token) || opt_value_flags.contains(&token) || inline_ok {
                i += 1;
            } else {
                return Err(format!("unrecognised argument '{token}'\n\n{}", usage()));
            }
        }
        Ok(())
    }

    fn value_of(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    /// Optional-value flag: absent → `None`, bare `--flag` →
    /// `Some(None)`, `--flag=value` → `Some(Some(value))`.
    fn optional_value(&self, name: &str) -> Option<Option<&str>> {
        self.0.iter().find_map(|a| {
            if a == name {
                return Some(None);
            }
            a.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix('='))
                .filter(|v| !v.is_empty())
                .map(Some)
        })
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value_of(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag {name}: cannot parse '{v}'")),
        }
    }

    fn policy_or(&self, default: SelectionPolicy) -> Result<SelectionPolicy, String> {
        match self.value_of("--policy") {
            None => Ok(default),
            Some(name) => SelectionPolicy::parse(name)
                .ok_or_else(|| format!("unknown policy '{name}' (worst-block-exact | inverse-a)")),
        }
    }
}

/// Did the command line ask for anything that needs the canonical
/// replay trace? (`--trace` in either form, or `--metrics`, whose
/// registry is aggregated from the same events.)
fn wants_events(flags: &Flags) -> bool {
    flags.optional_value("--trace").is_some() || flags.has("--metrics")
}

/// Append the shared `--trace[=PATH]` / `--metrics` / `--profile`
/// sections to a subcommand's stdout. `events` is the canonical replay
/// trace (already chronological); `fold` pre-seeds the metrics registry
/// with counters that do not come from events (the fleet telemetry
/// fold). The trace and metrics sections are pure functions of the
/// events, so they inherit the engines' thread/engine invariance;
/// `profile:` lines are the one deliberately nondeterministic tail.
fn append_observability(
    out: &mut String,
    flags: &Flags,
    cmd: &str,
    clock: &str,
    events: &[Event],
    fold: Option<&Metrics>,
    profiler: &Profiler,
) -> Result<(), String> {
    match flags.optional_value("--trace") {
        None => {}
        Some(None) => {
            out.push('\n');
            out.push_str(&trace_text(cmd, clock, events));
        }
        Some(Some(path)) => {
            std::fs::write(path, trace_text(cmd, clock, events))
                .map_err(|e| format!("cannot write trace '{path}': {e}"))?;
            let _ = writeln!(out, "\ntrace -> {path} ({} events)", events.len());
        }
    }
    if flags.has("--metrics") {
        let mut metrics = Metrics::from_events(events);
        if let Some(fold) = fold {
            metrics.merge(fold);
        }
        out.push('\n');
        out.push_str(&metrics.render_table());
    }
    let profile = profiler.render();
    if !profile.is_empty() {
        out.push('\n');
        out.push_str(&profile);
    }
    Ok(())
}

/// `scm trace summarize|chrome FILE` — re-read a saved trace and either
/// re-aggregate it into the metrics table (byte-identical to what
/// `--metrics` printed when the trace was recorded) or re-export it as
/// Chrome trace-event JSON for `chrome://tracing` / Perfetto.
fn trace_stdout(args: &[String]) -> Result<String, String> {
    const USAGE: &str = "usage: scm trace summarize FILE | scm trace chrome FILE";
    let [mode, path] = args else {
        return Err(USAGE.to_owned());
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    let trace = parse_trace(&text)?;
    match mode.as_str() {
        "summarize" => {
            let mut out = format!(
                "trace: cmd={} clock={} events={}\n\n",
                trace.cmd,
                trace.clock,
                trace.events.len()
            );
            out.push_str(&Metrics::from_events(&trace.events).render_table());
            Ok(out)
        }
        "chrome" => Ok(chrome_trace(&trace.events) + "\n"),
        other => {
            let hint = match suggest(other, ["summarize", "chrome"]) {
                Some(known) => format!(" (did you mean '{known}'?)"),
                None => String::new(),
            };
            Err(format!("unknown trace mode '{other}'{hint}\n{USAGE}"))
        }
    }
}

/// `scm table1` stdout: the regenerated table plus the reading notes.
pub fn table1_stdout() -> String {
    let mut out = crate::table1_report();
    out.push_str("notes:\n");
    out.push_str("  'CHEAPER' rows: our policy proves a smaller code already meets the\n");
    out.push_str("  budget (see DESIGN.md §5 — the paper's two tables are internally\n");
    out.push_str("  inconsistent about the selection formula; both policies shown).\n");
    out
}

/// `scm table2` stdout: the regenerated table plus the worked example.
pub fn table2_stdout() -> String {
    let mut out = crate::table2_report();
    out.push_str("worked example (Section III.2): c = 10, Pndc = 1e-9 ->\n");
    let plan = Evaluator::default()
        .goal_solve(paper_rams()[0], 10, 1e-9, SelectionPolicy::WorstBlockExact)
        .expect("the worked example is feasible")
        .plan;
    let _ = writeln!(
        out,
        "  a_search = {}, a_required = {}, code = {}, final a = {}",
        plan.a_search(),
        plan.a_required(),
        plan.code_name(),
        plan.a()
    );
    out.push_str("  paper: a = 8 -> C >= 9 -> 3-out-of-5 -> a = 10 - 1 = 9\n");
    out
}

/// `scm pareto` stdout: the title trade-off as CSV — the latency-budget
/// grid evaluated through the exploration engine, three paper RAMs per
/// row.
pub fn pareto_stdout(policy: SelectionPolicy) -> String {
    let cs = [
        1u32, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 30, 40, 50, 64, 100,
    ];
    let pndcs = [1e-2, 1e-5, 1e-9, 1e-12, 1e-15, 1e-20, 1e-30];
    let rams = paper_rams();

    let mut points = Vec::with_capacity(cs.len() * pndcs.len() * rams.len());
    for &pndc in &pndcs {
        for &c in &cs {
            for &ram in &rams {
                points.push(DesignPoint::paper(ram, c, pndc, policy));
            }
        }
    }
    let evaluations = Evaluator::default().evaluate_points(&points);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# area-vs-latency Pareto sweep, policy = {}",
        policy.name()
    );
    out.push_str("c,pndc,code,r,a,escape_per_cycle,pct_16x2K,pct_32x4K,pct_64x8K\n");
    for (budget_idx, chunk) in evaluations.chunks(rams.len()).enumerate() {
        // The CSV schema hard-codes the paper's three RAM columns; a
        // different geometry count must fail loudly, not emit an empty
        // sweep through the infeasibility skip below.
        assert_eq!(chunk.len(), 3, "pareto CSV expects the 3 paper RAMs");
        // Selection is geometry-independent: a budget is feasible for all
        // three RAMs or none. Infeasible corners are skipped, as before.
        let [Ok(a), Ok(b), Ok(c_eval)] = chunk else {
            continue;
        };
        let pndc = pndcs[budget_idx / cs.len()];
        let c = cs[budget_idx % cs.len()];
        let plan = &a.plan;
        let _ = writeln!(
            out,
            "{c},{pndc:.0e},{},{},{},{:.6},{:.3},{:.3},{:.3}",
            plan.code_name(),
            plan.r(),
            plan.a(),
            a.escape_per_cycle,
            a.area_percent(),
            b.area_percent(),
            c_eval.area_percent(),
        );
    }
    out
}

/// `scm explore` — evaluate a configurable slice of the design space and
/// print the grid plus its Pareto front.
fn explore_stdout(flags: &Flags) -> Result<String, String> {
    let policies = match flags.value_of("--policy") {
        None | Some("both") => SelectionPolicy::ALL.to_vec(),
        Some(name) => vec![SelectionPolicy::parse(name)
            .ok_or_else(|| format!("unknown policy '{name}' (worst-block-exact | inverse-a)"))?],
    };
    let workloads: Vec<String> = match flags.value_of("--workload") {
        None => vec!["uniform".to_owned()],
        Some("all") => MODEL_NAMES.iter().map(|s| (*s).to_owned()).collect(),
        Some(name) => {
            if model_by_name(name).is_none() {
                return Err(unknown_workload(name));
            }
            vec![name.to_owned()]
        }
    };
    let scrub = match flags.value_of("--scrub") {
        None => ScrubPolicy::Off,
        Some(name) => ScrubPolicy::parse(name)
            .ok_or_else(|| format!("unknown scrub policy '{name}' (off | sequential-sweep)"))?,
    };
    let fault_mixes = match flags.value_of("--fault-mix") {
        None => vec![FaultMix::Permanent],
        Some("all") => FaultMix::ALL.to_vec(),
        Some(name) => vec![FaultMix::parse(name).ok_or_else(|| {
            format!(
                "unknown fault mix '{name}' (one of: permanent, transient, intermittent, mix, all)"
            )
        })?],
    };
    let threads: usize = flags.parsed("--threads", 0)?;
    let trials: u32 = flags.parsed("--trials", 16)?;
    if trials == 0 {
        return Err("--trials must be at least 1".to_owned());
    }
    let sliced = engine_choice(flags, false)?;
    let lane_width = lane_width_flag(flags)?;

    let geometry = RamOrganization::with_mux8(1024, 16);
    let space = ExplorationSpace {
        geometries: vec![geometry],
        cycles: vec![2, 5, 10, 20, 30, 40],
        pndcs: vec![1e-2, 1e-5, 1e-9, 1e-15, 1e-20, 1e-30],
        policies,
        scrubs: vec![scrub],
        workloads,
        banks: vec![1],
        checkpoints: vec![0],
        repairs: vec![scm_explore::RepairPolicy::OFF],
        fault_mixes: fault_mixes.clone(),
    };

    let mut evaluator = Evaluator::default().threads(threads);
    // --trials, --fault-mix, and --engine only mean something to the
    // empirical stage, so asking for any of them switches adjudication on
    // rather than being silently ignored.
    let adjudicated = flags.has("--adjudicate")
        || flags.value_of("--trials").is_some()
        || flags.value_of("--fault-mix").is_some()
        || flags.value_of("--engine").is_some();
    if adjudicated {
        evaluator = evaluator.adjudicate(Adjudication {
            campaign: CampaignConfig {
                cycles: 10, // overridden per point
                trials,
                seed: 0xE7,
                write_fraction: 0.1,
            },
            max_faults: 64,
            scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
            sliced,
            lane_width,
        });
    }

    let mut profiler = Profiler::new(flags.has("--profile"));
    let results = profiler.time("evaluate-space", || evaluator.evaluate_space(&space));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "design-space exploration: {} RAM, {} candidate points{}",
        geometry.name(),
        space.len(),
        if adjudicated {
            format!(" (empirically adjudicated, {trials} trials/fault)")
        } else {
            String::new()
        }
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<44} | {:<12} | {:>5} | {:>12} | {:>9} | {:>8}{}{}",
        "point",
        "code",
        "a",
        "escape/cycle",
        "dec-chk %",
        "meets",
        if adjudicated { " | wrst-err-esc" } else { "" },
        if scrub == ScrubPolicy::SequentialSweep {
            " | sweep-SA1"
        } else {
            ""
        },
    );
    let _ = writeln!(out, "{}", "-".repeat(110));
    let mut infeasible = 0usize;
    let mut feasible = Vec::new();
    for result in results {
        match result {
            Err(_) => infeasible += 1,
            Ok(e) => {
                let mut line = format!(
                    "{:<44} | {:<12} | {:>5} | {:>12.6} | {:>9.2} | {:>8}",
                    e.point.label(),
                    e.plan.code_name(),
                    e.plan.a(),
                    e.escape_per_cycle,
                    e.area_percent(),
                    if e.meets_goal { "yes" } else { "NO" },
                );
                if let Some(emp) = &e.empirical {
                    let _ = write!(line, " | {:>12.4}", emp.worst_error_escape);
                }
                if let Some(bound) = &e.scrub_bound {
                    let _ = write!(line, " | {:>9}", bound.worst_sa1);
                }
                let _ = writeln!(out, "{line}");
                feasible.push(e);
            }
        }
    }
    out.push('\n');
    let front = pareto_front(&feasible);
    let _ = writeln!(
        out,
        "Pareto front (minimise dec-chk %, latency c, achieved Pndc): {} of {} feasible points",
        front.len(),
        feasible.len()
    );
    for e in &front {
        let _ = writeln!(
            out,
            "  {:<44} | {:<12} | {:>9.2} % | achieved Pndc {:.3e}",
            e.point.label(),
            e.plan.code_name(),
            e.area_percent(),
            e.achieved_pndc
        );
    }
    if fault_mixes.len() > 1 {
        out.push('\n');
        let _ = writeln!(
            out,
            "per-mix Pareto fronts (minimise dec-chk %, latency c, empirical escape):"
        );
        for (mix, front) in scm_explore::mix_pareto_fronts(&feasible) {
            let _ = writeln!(
                out,
                "  fault mix = {}: {} point(s)",
                mix.name(),
                front.len()
            );
            for e in &front {
                let escape = e
                    .empirical
                    .map(|emp| emp.mean_escape)
                    .unwrap_or(e.achieved_pndc);
                let _ = writeln!(
                    out,
                    "    {:<52} | {:>9.2} % | escape {escape:.4}",
                    e.point.label(),
                    e.area_percent(),
                );
            }
        }
    }
    let stats = evaluator.cache_stats();
    let _ = writeln!(
        out,
        "\n{} infeasible points skipped; memo: {} hits / {} misses \
         (plans {}/{}, areas {}/{}, scrub bounds {}/{})",
        infeasible,
        stats.hits(),
        stats.misses(),
        stats.plans.hits,
        stats.plans.misses,
        stats.areas.hits,
        stats.areas.misses,
        stats.scrub_bounds.hits,
        stats.scrub_bounds.misses,
    );
    // Plain explore has no event stream (--trace/--metrics switch to
    // the guided path); --profile still renders its trailer here.
    append_observability(
        &mut out,
        flags,
        "explore",
        "scenario-trials",
        &[],
        None,
        &profiler,
    )?;
    Ok(out)
}

/// `scm explore --guided` — budget-bounded multi-fidelity search over a
/// named space, with rung-level budget accounting on stdout. The output
/// is a pure function of the flags: bit-identical at every thread count,
/// which is what lets CI diff two runs at different `--threads`.
fn guided_stdout(flags: &Flags) -> Result<String, String> {
    let threads: usize = flags.parsed("--threads", 0)?;
    let trials: u32 = flags.parsed("--trials", 64)?;
    if trials == 0 {
        return Err("--trials must be at least 1".to_owned());
    }
    let sliced = engine_choice(flags, true)?; // guided default: the fast path
    let lane_width = lane_width_flag(flags)?;
    let budget: u64 = flags.parsed("--budget", 0)?;
    let space = match flags.value_of("--space") {
        None | Some("worked") => ExplorationSpace::worked_reference(),
        Some("million") => ExplorationSpace::million_grid(),
        Some(other) => {
            let hint = match suggest(other, ["worked", "million"]) {
                Some(known) => format!(" (did you mean '{known}'?)"),
                None => String::new(),
            };
            return Err(format!("unknown space '{other}'{hint} (worked | million)"));
        }
    };

    let evaluator = Evaluator::default()
        .threads(threads)
        .adjudicate(Adjudication {
            campaign: CampaignConfig {
                cycles: 10, // overridden per point
                trials,
                seed: 0xE7,
                write_fraction: 0.1,
            },
            max_faults: 64,
            scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
            sliced,
            lane_width,
        });
    let config = if budget == 0 {
        GuidedConfig::default()
    } else {
        GuidedConfig::with_budget(budget)
    };
    let mut profiler = Profiler::new(flags.has("--profile"));
    let report = profiler
        .time("guided-search", || {
            GuidedSearch::new(&evaluator, config).run(&space)
        })
        .map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "guided design-space search: {} points, budget {} scenario-trials, \
         {} engine, {} trials/fault at full fidelity",
        report.space_points,
        if budget == 0 {
            "unbounded".to_owned()
        } else {
            budget.to_string()
        },
        if sliced { "sliced" } else { "scalar" },
        trials,
    );
    if report.sampled {
        let _ = writeln!(
            out,
            "space too large to enumerate: stratified sample + local mutation, \
             {} candidates screened",
            report.candidates
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "{:>3} | {:>6} | {:>7} | {:>9} | {:>10} | {:>9} | {:>10}",
        "gen", "trials", "entered", "evaluated", "infeasible", "survivors", "spent"
    );
    let _ = writeln!(out, "{}", "-".repeat(74));
    for r in &report.rungs {
        let _ = writeln!(
            out,
            "{:>3} | {:>6} | {:>7} | {:>9} | {:>10} | {:>9} | {:>10}",
            r.generation, r.trials, r.entered, r.evaluated, r.infeasible, r.survivors, r.spent
        );
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "spent {} of exhaustive-equivalent {} scenario-trials ({:.1} %); saved {}{}",
        report.spent,
        report.exhaustive_cost,
        report.spent_fraction() * 100.0,
        report.saved(),
        if report.truncated {
            " — budget exhausted, cohort truncated"
        } else {
            ""
        },
    );
    if report.infeasible > 0 {
        let _ = writeln!(out, "{} infeasible candidate(s) skipped", report.infeasible);
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "Pareto front (minimise dec-chk %, latency c, empirical escape): {} point(s){}",
        report.front.len(),
        if report.provisional {
            " — PROVISIONAL: the budget died before full fidelity"
        } else {
            ""
        },
    );
    for e in &report.front {
        let emp = e.empirical.as_ref().expect("guided points are adjudicated");
        let _ = writeln!(
            out,
            "  {:<52} | {:<12} | {:>9.2} % | escape {:.4} | latency {:>6.2} c",
            e.point.label(),
            e.plan.code_name(),
            e.area_percent(),
            emp.mean_escape,
            emp.mean_latency,
        );
    }
    let stats = evaluator.cache_stats();
    let _ = writeln!(
        out,
        "\nmemo: {} hits / {} misses (plans {}/{}, areas {}/{}, scrub bounds {}/{})",
        stats.hits(),
        stats.misses(),
        stats.plans.hits,
        stats.plans.misses,
        stats.areas.hits,
        stats.areas.misses,
        stats.scrub_bounds.hits,
        stats.scrub_bounds.misses,
    );
    // Rung prunes on the budget clock: explore's whole event stream.
    let events = scm_explore::rung_events(&report);
    append_observability(
        &mut out,
        flags,
        "explore",
        "scenario-trials",
        &events,
        None,
        &profiler,
    )?;
    Ok(out)
}

/// `scm campaign` — a Monte-Carlo fault campaign on the worked example
/// under any registered workload model and temporal fault model
/// (`--fault-model transient` injects one-shot cell flips; a
/// `--scrub-period` sweep is what makes those detectable at all when
/// mission traffic misses them).
fn campaign_stdout(flags: &Flags) -> Result<String, String> {
    let workload = flags.value_of("--workload").unwrap_or("uniform");
    let model = model_by_name(workload).ok_or_else(|| unknown_workload(workload))?;
    let fault_model = fault_model_or_default(flags, &FAULT_MODELS)?;
    let sliced = engine_choice(flags, true)?;
    let lane_width = lane_width_flag(flags)?;
    let scrub_period: u64 = flags.parsed("--scrub-period", 0)?;
    let trials: u32 = flags.parsed("--trials", 32)?;
    if trials == 0 {
        return Err("--trials must be at least 1".to_owned());
    }
    let cycles: u64 = flags.parsed("--cycles", 10)?;
    let seed: u64 = flags.parsed("--seed", 0xC0FFEE)?;
    let threads: usize = flags.parsed("--threads", 0)?;

    let design = SelfCheckingRamBuilder::new(1024, 16)
        .mux_factor(8)
        .latency_budget(10, 1e-9)
        .map_err(|e| e.to_string())?
        .build()
        .map_err(|e| e.to_string())?;
    let scenarios: Vec<FaultScenario> = match fault_model {
        "transient" => transient_universe(design.config(), 64, cycles, seed),
        "intermittent" => intermittent_universe(design.config(), 8, 2, seed),
        "mix" => mixed_universe(design.config(), 48, cycles, seed),
        _ => design
            .decoder_faults()
            .into_iter()
            .map(FaultScenario::permanent)
            .collect(),
    };
    let campaign = CampaignConfig {
        cycles,
        trials,
        seed,
        write_fraction: 0.1,
    };
    let mut profiler = Profiler::new(flags.has("--profile"));
    let engine = CampaignEngine::new(campaign)
        .workload_model(model)
        .threads(threads)
        .scrub(scrub_period)
        .sliced(sliced)
        .lane_width(lane_width);
    let result = profiler.time("campaign-fan-out", || {
        engine.run_scenarios(design.config(), &scenarios)
    });
    let events = if wants_events(flags) {
        profiler.time("trace-replay", || {
            engine.trace_scenarios(design.config(), &scenarios)
        })
    } else {
        Vec::new()
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "campaign: 1Kx16 worked example (3-out-of-5, a = 9), workload = {workload}"
    );
    if sliced {
        out.push_str("engine = sliced (multi-word scenario lane slabs)\n");
        let occupancy = engine.occupancy(scenarios.len());
        let _ = writeln!(
            out,
            "occupancy: {}/{} lanes filled across {} block{} (lane width {})",
            occupancy.filled,
            occupancy.capacity,
            occupancy.blocks,
            if occupancy.blocks == 1 { "" } else { "s" },
            occupancy.width,
        );
    }
    // Non-default temporal settings announce themselves; the classical
    // permanent/unscrubbed output stays byte-for-byte what it always was.
    if fault_model != "permanent" || scrub_period > 0 {
        let _ = writeln!(
            out,
            "fault model = {fault_model}, scrub period = {}",
            if scrub_period == 0 {
                "off".to_owned()
            } else {
                scrub_period.to_string()
            }
        );
    }
    out.push('\n');
    out.push_str(&summary(&result));
    out.push('\n');
    out.push_str(&worst_offenders(&result, 5));
    append_observability(
        &mut out, flags, "campaign", "cycles", &events, None, &profiler,
    )?;
    Ok(out)
}

/// `scm system` — a sharded multi-bank system campaign: four
/// heterogeneous banks behind an address interleaver, scrub reads and
/// checkpoints scheduled against live traffic, detection measured on the
/// global clock. Stdout is byte-stable at every thread count (pinned by
/// `tests/system_fixture.rs`).
fn system_stdout(flags: &Flags) -> Result<String, String> {
    let workload = flags.value_of("--workload").unwrap_or("uniform");
    let model = model_by_name(workload).ok_or_else(|| unknown_workload(workload))?;
    let trials: u32 = flags.parsed("--trials", 8)?;
    if trials == 0 {
        return Err("--trials must be at least 1".to_owned());
    }
    let cycles: u64 = flags.parsed("--cycles", 240)?;
    let seed: u64 = flags.parsed("--seed", 0x5E5)?;
    let threads: usize = flags.parsed("--threads", 0)?;
    let scrub_period: u64 = flags.parsed("--scrub-period", 4)?;
    let checkpoint: u64 = flags.parsed("--checkpoint", 64)?;
    let interleaving = match flags.value_of("--interleave") {
        None => Interleaving::LowOrder,
        Some(name) => Interleaving::parse(name)
            .ok_or_else(|| format!("unknown interleaving '{name}' (low-order | high-order)"))?,
    };

    // Four heterogeneous banks: a big code-store, two mid-size working
    // banks (one on a cheaper modulus) and a small hot bank.
    let code = MOutOfN::new(3, 5).expect("3-out-of-5 exists");
    let bank = |words: u64, word_bits: u32, mux: u32, a: u64| -> Result<RamConfig, String> {
        let org = RamOrganization::new(words, word_bits, mux);
        let row_map = CodewordMap::mod_a(code, a, org.rows()).map_err(|e| e.to_string())?;
        let col_map =
            CodewordMap::mod_a(code, a, org.mux_factor() as u64).map_err(|e| e.to_string())?;
        Ok(RamConfig::new(org, row_map, col_map))
    };
    let system = SystemConfig {
        banks: vec![
            bank(1024, 16, 8, 9)?,
            bank(512, 8, 4, 9)?,
            bank(256, 8, 4, 7)?,
            bank(64, 8, 4, 9)?,
        ],
        interleaving,
        scrub: scm_system::ScrubSchedule {
            period: scrub_period,
        },
        checkpoint: scm_system::CheckpointSchedule {
            interval: checkpoint,
        },
    };
    let campaign = CampaignConfig {
        cycles,
        trials,
        seed,
        write_fraction: 0.1,
    };
    let fault_model = fault_model_or_default(flags, &["permanent", "transient"])?;
    let sliced = engine_choice(flags, true)?;
    let lane_width = lane_width_flag(flags)?;
    let seu_mean: f64 = flags.parsed("--seu-mean", 40.0)?;
    if !seu_mean.is_finite() || seu_mean < 1.0 {
        return Err("--seu-mean must be a finite number of at least 1 cycle".to_owned());
    }
    let engine = SystemCampaign::new(system, campaign)
        .workload_model(model)
        .threads(threads)
        .sliced(sliced)
        .lane_width(lane_width);
    let universe = match fault_model {
        "transient" => engine.seu_universe(12, &SeuProcess::new(seu_mean)),
        _ => engine.decoder_universe(12),
    };
    let mut profiler = Profiler::new(flags.has("--profile"));
    let result = profiler.time("system-campaign", || engine.run(&universe));
    let events = if wants_events(flags) {
        profiler.time("trace-replay", || engine.trace(&universe))
    } else {
        Vec::new()
    };

    let mut out = String::new();
    out.push_str("sharded self-checking memory system: 4 heterogeneous banks\n\n");
    if sliced {
        out.push_str("engine: sliced (per-bank fault lanes share one event stream)\n\n");
    }
    if fault_model == "transient" {
        let _ = writeln!(
            out,
            "fault model: transient SEUs, geometric inter-arrival (mean {seu_mean} cycles), \
             12 arrivals/bank; latency and lost work anchored at each strike\n"
        );
    }
    out.push_str(&system_report(engine.system(), &result, workload));
    append_observability(
        &mut out, flags, "system", "cycles", &events, None, &profiler,
    )?;
    Ok(out)
}

/// `scm diag` — the diagnosis/repair story end to end: a fault
/// dictionary over the small worked RAM, a per-class
/// detect→localize→repair campaign, one fully worked cell fault, the
/// spare/BIST area bill, then the system view with BIST sessions
/// scheduled against live traffic. Stdout is byte-stable at every thread
/// count (pinned by `tests/diag_fixture.rs`).
fn diag_stdout(flags: &Flags) -> Result<String, String> {
    let march_name = flags.value_of("--march").unwrap_or("march-c-");
    let test = MarchTest::by_name(march_name).ok_or_else(|| {
        let hint = match suggest(march_name, MarchTest::NAMES) {
            Some(known) => format!(" (did you mean '{known}'?)"),
            None => String::new(),
        };
        format!(
            "unknown March test '{march_name}'{hint} (one of: {})",
            MarchTest::NAMES.join(", ")
        )
    })?;
    let spare_rows: u32 = flags.parsed("--spare-rows", 1)?;
    let spare_cols: u32 = flags.parsed("--spare-cols", 1)?;
    let trials: u32 = flags.parsed("--trials", 2)?;
    if trials == 0 {
        return Err("--trials must be at least 1".to_owned());
    }
    let cycles: u64 = flags.parsed("--cycles", 1600)?;
    let seed: u64 = flags.parsed("--seed", 0xD1A6)?;
    let threads: usize = flags.parsed("--threads", 0)?;

    // The small worked RAM: 64x8, 1-of-4 mux, the paper's 3-out-of-5
    // code at a = 9 — big enough for every fault class, small enough for
    // a full-resolution cell dictionary.
    let org = RamOrganization::new(64, 8, 4);
    let code = MOutOfN::new(3, 5).expect("3-out-of-5 exists");
    let config = RamConfig::new(
        org,
        CodewordMap::mod_a(code, 9, org.rows()).map_err(|e| e.to_string())?,
        CodewordMap::mod_a(code, 9, org.mux_factor() as u64).map_err(|e| e.to_string())?,
    );
    let fault_model = fault_model_or_default(flags, &["permanent", "transient"])?;
    let sliced = engine_choice(flags, true)?;
    let lane_width = lane_width_flag(flags)?;
    let mut candidates = cell_universe(&config);
    candidates.extend(
        decoder_fault_universe(org.row_bits())
            .into_iter()
            .map(FaultSite::RowDecoder),
    );
    // Both builds file identical signatures (the sliced backend is
    // lane-by-lane bit-identical to the scalar one), so the rendered
    // output — fixture-pinned — does not depend on the engine choice.
    let mut profiler = Profiler::new(flags.has("--profile"));
    let dictionary = profiler.time("dictionary-build", || {
        if sliced {
            FaultDictionary::build_sliced(&config, &test, seed, &candidates, threads, lane_width)
        } else {
            FaultDictionary::build(&config, &test, seed, &candidates, threads)
        }
    });

    let budget = SpareBudget {
        rows: spare_rows,
        cols: spare_cols,
    };
    let mission = CampaignConfig {
        cycles: 200,
        trials,
        seed,
        write_fraction: 0.1,
    };
    if fault_model == "transient" {
        // The triage view: the repeat-and-compare policy on a one-shot
        // flip (no spare burned) next to the same cell as a hard fault
        // (confirmed and repaired) — the side-by-side the policy exists
        // for.
        let soft = FaultScenario::transient(
            FaultSite::Cell {
                row: 6,
                col: 9,
                stuck: false,
            },
            200,
        );
        let hard = FaultScenario::permanent(FaultSite::Cell {
            row: 6,
            col: 9,
            stuck: true,
        });
        let outcomes: Vec<scm_diag::TriageOutcome> = [soft, hard]
            .into_iter()
            .map(|s| scm_diag::triage_session(&dictionary, s, budget, mission, seed ^ 0xF1E1))
            .collect();
        let mut out = String::new();
        out.push_str("self-checking memory diagnosis and repair — transient triage view\n\n");
        let _ = writeln!(
            out,
            "design: {} RAM, row code {}, March test {} = {}",
            org.name(),
            config.row_map().code_name(),
            test.name(),
            test.notation(),
        );
        // The Ord-keyed reverse dictionary: confirmation compares the
        // observed log against the signature filed for the suspect site.
        let index = dictionary.site_index();
        let _ = writeln!(
            out,
            "dictionary: {} diagnosable sites indexed; filed signature for {}: {} event(s)",
            index.len(),
            hard.site,
            index.get(&hard.site).map(|s| s.0.len()).unwrap_or(0),
        );
        out.push('\n');
        out.push_str(&scm_diag::triage_report(&outcomes));
        // The triage view runs no system campaign, so its trace is
        // empty; `--trace`/`--metrics` still render (header only) so
        // pipelines need not special-case the fault model.
        append_observability(&mut out, flags, "diag", "cycles", &[], None, &profiler)?;
        return Ok(out);
    }
    // A mixed slice of the dictionary's own candidate set: every 29th
    // site covers all classes without campaigning all ~1.2K.
    let universe: Vec<FaultSite> = candidates.iter().copied().step_by(29).collect();
    let outcomes = DiagnosisCampaign::new(budget, mission)
        .threads(threads)
        .run(&dictionary, &universe);
    // The acceptance walk: one concrete stuck cell, end to end.
    let walkthrough = run_session(
        &dictionary,
        FaultSite::Cell {
            row: 6,
            col: 9,
            stuck: true,
        },
        budget,
        mission,
        seed ^ 0xF1E1,
    );
    let area = scm_area::repair_overhead(
        org,
        spare_rows,
        spare_cols,
        test.ops_per_word() as u32,
        &scm_area::TechnologyParams::default(),
    );

    let mut out = String::new();
    out.push_str("self-checking memory diagnosis and repair\n\n");
    out.push_str(&diag_report(
        &dictionary,
        budget,
        mission,
        &outcomes,
        &walkthrough,
        &area,
    ));
    out.push('\n');
    let (section, events) = diag_system_section(
        &config,
        &test,
        budget,
        CampaignConfig {
            cycles,
            trials,
            seed,
            write_fraction: 0.1,
        },
        threads,
        wants_events(flags),
        &mut profiler,
    )?;
    out.push_str(&section);
    append_observability(&mut out, flags, "diag", "cycles", &events, None, &profiler)?;
    Ok(out)
}

/// The system view of `scm diag`: two banks behind an interleaver, BIST
/// sessions stealing slots from live traffic (reactive repair interrupts
/// and proactive round-robin sweeps), lost work charged to checkpoints.
/// Returns the rendered section plus the campaign's trace events (empty
/// unless `want_events`).
fn diag_system_section(
    bank: &RamConfig,
    test: &MarchTest,
    budget: SpareBudget,
    campaign: CampaignConfig,
    threads: usize,
    want_events: bool,
    profiler: &mut Profiler,
) -> Result<(String, Vec<Event>), String> {
    let system = SystemConfig {
        banks: vec![bank.clone(), bank.clone()],
        interleaving: Interleaving::LowOrder,
        scrub: scm_system::ScrubSchedule { period: 4 },
        checkpoint: scm_system::CheckpointSchedule { interval: 64 },
    };
    let cycles = campaign.cycles;
    let trials = campaign.trials;
    let period = cycles / 2;
    let policy = DiagPolicy {
        period,
        test: test.clone(),
        session_seed: campaign.seed,
        budget,
    };
    let engine = DiagCampaign::new(system, policy, campaign).threads(threads);
    let universe = engine.diag_universe(6, 4);
    let result = profiler.time("diag-campaign", || engine.run(&universe));
    let events = if want_events {
        profiler.time("trace-replay", || engine.trace(&universe))
    } else {
        Vec::new()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "system view: 2 x {} banks, low-order interleaving, scrub period 4, checkpoint interval 64",
        bank.org().name(),
    );
    let _ = writeln!(
        out,
        "policy: repair interrupt on indication + proactive {} sessions every {} cycles \
         ({} cycles/bank session)",
        test.name(),
        period,
        test.session_cycles(bank.org().words()),
    );
    let _ = writeln!(
        out,
        "campaign: {} faults x {} trials over a {}-cycle horizon",
        universe.len(),
        trials,
        cycles,
    );
    let _ = writeln!(
        out,
        "  detected {:.4} | localized {:.4} | repaired {:.4} of trials",
        result.detected_fraction(),
        result.localized_fraction(),
        result.repaired_fraction(),
    );
    let _ = writeln!(
        out,
        "  mean time-to-repair {:.2} cycles (unrepaired censored at horizon)",
        result.mean_time_to_repair(),
    );
    let _ = writeln!(
        out,
        "  BIST bandwidth {:.4} of horizon | expected lost work {:.2} cycles",
        result.bist_overhead(),
        result.expected_lost_work(),
    );
    let _ = writeln!(
        out,
        "  post-repair escapes: {} (sound repairs leave zero)",
        result.post_repair_escapes(),
    );
    Ok((out, events))
}

/// `scm fleet` — the streaming fleet campaign: a cohort spec (built-in
/// preset or `--spec` file) driven through `scm_fleet::FleetDriver`
/// with optional periodic checkpoints, kill-safe `--resume`, and the
/// per-cohort FIT/SLO report (plus `--json` telemetry). Stdout is
/// byte-stable at every thread count and across any checkpoint/resume
/// split (pinned by `tests/fleet_fixture.rs` and the kill test).
fn fleet_stdout(flags: &Flags) -> Result<String, String> {
    let spec = match (flags.value_of("--spec"), flags.value_of("--preset")) {
        (Some(_), Some(_)) => {
            return Err("--spec and --preset are mutually exclusive".to_owned());
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec '{path}': {e}"))?;
            FleetSpec::parse(&text)?
        }
        (None, preset) => {
            let name = preset.unwrap_or("small");
            FleetSpec::preset(name).ok_or_else(|| {
                let hint = match suggest(name, PRESET_NAMES) {
                    Some(known) => format!(" (did you mean '{known}'?)"),
                    None => String::new(),
                };
                format!(
                    "unknown preset '{name}'{hint} (one of: {})",
                    PRESET_NAMES.join(", ")
                )
            })?
        }
    };
    let spec = match flags.value_of("--devices") {
        None => spec,
        Some(_) => {
            let devices: u64 = flags.parsed("--devices", 0)?;
            if devices < spec.cohorts.len() as u64 {
                return Err(format!(
                    "--devices {devices} cannot cover {} cohorts (one device each, minimum)",
                    spec.cohorts.len()
                ));
            }
            spec.with_devices(devices)
        }
    };
    let checkpoint_every: u64 = flags.parsed("--checkpoint-every", 0)?;
    let halt_after = match flags.value_of("--halt-after") {
        None => None,
        Some(_) => Some(flags.parsed("--halt-after", 0u64)?),
    };
    let resume = flags.value_of("--resume").map(std::path::PathBuf::from);
    // The checkpoint path: explicit flag, else the resume source, else a
    // conventional default once any checkpointing behaviour is asked for.
    let checkpoint = flags
        .value_of("--checkpoint")
        .map(std::path::PathBuf::from)
        .or_else(|| resume.clone())
        .or_else(|| {
            (checkpoint_every > 0 || halt_after.is_some())
                .then(|| std::path::PathBuf::from("scm-fleet.ckpt"))
        });
    let options = FleetOptions {
        seed: flags.parsed("--seed", 0xF1EE7)?,
        threads: flags.parsed("--threads", 0)?,
        sliced: engine_choice(flags, true)?,
        lane_width: lane_width_flag(flags)?,
        checkpoint_every,
        checkpoint,
        halt_after,
    };
    let mut profiler = Profiler::new(flags.has("--profile"));
    let mut driver = match &resume {
        Some(path) => FleetDriver::resume(spec, options, path)?,
        None => FleetDriver::new(spec, options)?,
    };
    let progress = profiler.time("fleet-drive", || driver.run())?;
    // Driver-level events only: checkpoint writes/restores on the
    // device-count clock (per-device events would flood at fleet scale).
    let events = driver.events().to_vec();
    match progress {
        FleetProgress::Completed(outcome) => {
            let mut out = scm_fleet::fleet_report(&outcome);
            match flags.value_of("--json") {
                None => {}
                Some("-") => {
                    out.push('\n');
                    out.push_str(&scm_fleet::fleet_json(&outcome));
                    out.push('\n');
                }
                Some(path) => {
                    std::fs::write(path, scm_fleet::fleet_json(&outcome) + "\n")
                        .map_err(|e| format!("cannot write json telemetry '{path}': {e}"))?;
                    let _ = writeln!(out, "\njson telemetry -> {path}");
                }
            }
            // The fleet's per-trial events live inside devices; its
            // registry is instead folded from the settled telemetry.
            let fold = flags.has("--metrics").then(|| {
                let mut fold = Metrics::new();
                for (cohort, telemetry) in outcome.spec.cohorts.iter().zip(&outcome.cohorts) {
                    telemetry.fold_metrics(&cohort.name, &mut fold);
                }
                fold
            });
            append_observability(
                &mut out,
                flags,
                "fleet",
                "devices",
                &events,
                fold.as_ref(),
                &profiler,
            )?;
            Ok(out)
        }
        FleetProgress::Halted {
            devices_done,
            checkpoint,
        } => {
            let mut out = format!(
                "fleet halted after {devices_done} devices; checkpoint at {}\n\
                 resume with: scm fleet ... --resume {}\n",
                checkpoint.display(),
                checkpoint.display(),
            );
            append_observability(
                &mut out, flags, "fleet", "devices", &events, None, &profiler,
            )?;
            Ok(out)
        }
    }
}

/// `scm ablations` stdout — the design-choice ablations (odd-`a` rule,
/// decoder pairing arity, completion fix).
pub fn ablations_stdout() -> String {
    let mut out = String::new();
    ablation_odd_a(&mut out);
    ablation_arity(&mut out);
    ablation_completion_fix(&mut out);
    out
}

fn ablation_odd_a(out: &mut String) {
    let _ = writeln!(out, "## Ablation 1 — the odd-a rule (8-bit decoder)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>4} | {:>12} | {:>14} | {:>14} | {:>10} | grade",
        "a", "paper bound", "err-escape", "empirical", "zero-lat %"
    );
    let _ = writeln!(out, "{}", "-".repeat(82));
    let mut nl = Netlist::new();
    let addr = nl.inputs(8);
    let dec = scm_decoder::build_multilevel_decoder(&mut nl, &addr, 2);
    // Empirical companion: a 1K×8 RAM whose row decoder is exactly this
    // 8-bit structure, campaigned over every row-decoder stuck-at-1 on the
    // parallel engine. The mapping layer rejects even moduli below the line
    // count outright (the rule is structural, not advisory), so those rows
    // print "rejected".
    let org = RamOrganization::new(1024, 8, 4);
    let code = MOutOfN::centered(7).expect("7-wide centred code exists");
    let col_map = CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), 9, 4).unwrap();
    let sa1: Vec<FaultSite> = decoder_fault_universe(8)
        .into_iter()
        .filter(|f| f.stuck_one)
        .map(FaultSite::RowDecoder)
        .collect();
    let campaign = CampaignConfig {
        cycles: 10,
        trials: 24,
        seed: 0xA0DD,
        write_fraction: 0.1,
    };
    let engine = CampaignEngine::new(campaign);
    for a in [7u64, 8, 9, 10, 11, 12, 13] {
        let report = analyze_decoder(&dec, MappingKind::ModA { a });
        let empirical = match CodewordMap::mod_a(code, a, org.rows()) {
            Ok(row_map) => {
                let config = RamConfig::new(org, row_map, col_map.clone());
                let result = engine.run(&config, &sa1);
                format!("{:>14.4}", result.worst_error_escape())
            }
            Err(_) => format!("{:>14}", "rejected"),
        };
        let _ = writeln!(
            out,
            "{a:>4} | {:>12.4} | {:>14.4} | {empirical} | {:>10.1} | {:?}",
            report.paper_escape_bound,
            report.worst_error_escape,
            100.0 * report.zero_latency_fraction(),
            classify(&report)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "even moduli are Unprotected: some faults become undetectable — the"
    );
    let _ = writeln!(
        out,
        "mapping constructor refuses them, and the analytical row shows why."
    );
    let _ = writeln!(
        out,
        "'empirical' is the engine's worst per-fault trial-escape frequency over"
    );
    let _ = writeln!(
        out,
        "all ~320 SA1 row-decoder faults at c = 10 (24 trials/fault); as a max"
    );
    let _ = writeln!(
        out,
        "over the whole universe it rides sampling noise a couple of sigma above"
    );
    let _ = writeln!(
        out,
        "the per-cycle 'err-escape', and collapses onto it as trials grow."
    );
    let _ = writeln!(out);
}

fn ablation_arity(out: &mut String) {
    let _ = writeln!(
        out,
        "## Ablation 2 — decoder pairing arity (8-bit decoder, a = 9)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>5} | {:>7} | {:>9} | {:>12} | {:>14}",
        "arity", "gates", "GEs", "paper bound", "err-escape"
    );
    let _ = writeln!(out, "{}", "-".repeat(60));
    for arity in [2usize, 3, 4, 8] {
        let mut nl = Netlist::new();
        let addr = nl.inputs(8);
        let dec = scm_decoder::build_multilevel_decoder(&mut nl, &addr, arity);
        let stats = gate_stats(&nl);
        let report = analyze_decoder(&dec, MappingKind::ModA { a: 9 });
        let _ = writeln!(
            out,
            "{arity:>5} | {:>7} | {:>9.1} | {:>12.4} | {:>14.4}",
            stats.gates,
            stats.gate_equivalents,
            report.paper_escape_bound,
            report.worst_error_escape
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "wider gates shrink the tree but merge levels: fewer intermediate"
    );
    let _ = writeln!(
        out,
        "blocks can only *remove* colliding fault sites, so the 2-input"
    );
    let _ = writeln!(
        out,
        "analysis upper-bounds every arity — exactly the paper's claim."
    );
    let _ = writeln!(out);
}

fn ablation_completion_fix(out: &mut String) {
    let _ = writeln!(
        out,
        "## Ablation 3 — the completion fix (3-out-of-5, a = 9, 128 lines)"
    );
    let _ = writeln!(out);
    let code = MOutOfN::new(3, 5).unwrap();
    let with_fix = CodewordMap::mod_a(code, 9, 128).unwrap();
    let distinct_with: std::collections::HashSet<u64> = with_fix.table().into_iter().collect();
    // Without the fix: simulate by mapping through a = 9 with exactly 9
    // ranks (drop the spare-word remap) — reconstruct via rank_for modulo.
    let distinct_without: std::collections::HashSet<u64> = (0..128u64)
        .map(|addr| code.word_at((addr % 9) as u128).unwrap())
        .collect();
    let _ = writeln!(
        out,
        "  distinct ROM codewords with fix:    {}/{}",
        distinct_with.len(),
        code.count()
    );
    let _ = writeln!(
        out,
        "  distinct ROM codewords without fix: {}/{}",
        distinct_without.len(),
        code.count()
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "the fix makes the q-out-of-r checker see its complete codeword set"
    );
    let _ = writeln!(
        out,
        "during normal operation (the self-testing requirement); detection"
    );
    let _ = writeln!(
        out,
        "probabilities are otherwise unchanged except on the one re-mapped line."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_subcommand_and_help() {
        let err = run(&["frobnicate".to_owned()]).unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(err.contains("table1"));
        let help = run(&["help".to_owned()]).unwrap();
        assert!(help.contains("campaign"));
        for name in MODEL_NAMES {
            assert!(help.contains(name), "usage must list workload '{name}'");
        }
    }

    #[test]
    fn pareto_policy_flag_switches_the_sweep() {
        let default = run(&["pareto".to_owned()]).unwrap();
        assert!(default.contains("policy = worst-block-exact"));
        let inverse = run(&[
            "pareto".to_owned(),
            "--policy".to_owned(),
            "inverse-a".to_owned(),
        ])
        .unwrap();
        assert!(inverse.contains("policy = inverse-a"));
        assert!(run(&[
            "pareto".to_owned(),
            "--policy".to_owned(),
            "bogus".to_owned()
        ])
        .is_err());
    }

    #[test]
    fn explore_runs_for_every_workload_name() {
        for name in MODEL_NAMES {
            let out = run(&[
                "explore".to_owned(),
                "--workload".to_owned(),
                (*name).to_owned(),
                "--policy".to_owned(),
                "inverse-a".to_owned(),
            ])
            .unwrap();
            assert!(out.contains("Pareto front"), "{name}");
            assert!(out.contains(name), "{name} missing from point labels");
        }
    }

    #[test]
    fn misspelled_and_valueless_flags_are_rejected_not_defaulted() {
        let err = run(&[
            "campaign".to_owned(),
            "--cycels".to_owned(),
            "1000".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("unrecognised argument '--cycels'"), "{err}");
        let err = run(&["explore".to_owned(), "--trials".to_owned()]).unwrap_err();
        assert!(err.contains("missing its value"), "{err}");
        let err = run(&["explore".to_owned(), "--trials".to_owned(), "0".to_owned()]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = run(&["table1".to_owned(), "--policy".to_owned(), "x".to_owned()]).unwrap_err();
        assert!(err.contains("unrecognised argument"), "{err}");
    }

    #[test]
    fn trials_flag_implies_adjudication_in_explore() {
        let out = run(&[
            "explore".to_owned(),
            "--trials".to_owned(),
            "2".to_owned(),
            "--policy".to_owned(),
            "inverse-a".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("empirically adjudicated, 2 trials/fault"));
        assert!(out.contains("wrst-err-esc"));
    }

    #[test]
    fn engine_knob_selects_the_sliced_backend_and_rejects_unknowns() {
        let sliced = run(&[
            "campaign".to_owned(),
            "--trials".to_owned(),
            "2".to_owned(),
            "--cycles".to_owned(),
            "6".to_owned(),
            "--engine".to_owned(),
            "sliced".to_owned(),
        ])
        .unwrap();
        assert!(sliced.contains("engine = sliced"), "{sliced}");
        // An absent flag means sliced on campaign/system/diag — the
        // fast path became the default once it was strictly faster.
        let default = run(&[
            "campaign".to_owned(),
            "--trials".to_owned(),
            "2".to_owned(),
            "--cycles".to_owned(),
            "6".to_owned(),
        ])
        .unwrap();
        assert_eq!(default, sliced, "absent --engine must mean sliced");
        // `--engine scalar` spelled out: no engine banner, exactly the
        // byte-pinned rendering the fixtures keep requesting explicitly.
        let scalar = run(&[
            "campaign".to_owned(),
            "--trials".to_owned(),
            "2".to_owned(),
            "--cycles".to_owned(),
            "6".to_owned(),
            "--engine".to_owned(),
            "scalar".to_owned(),
        ])
        .unwrap();
        assert!(!scalar.contains("engine ="), "{scalar}");
        let system = run(&[
            "system".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--cycles".to_owned(),
            "60".to_owned(),
            "--engine".to_owned(),
            "sliced".to_owned(),
        ])
        .unwrap();
        assert!(system.contains("engine: sliced"), "{system}");
        let err = run(&[
            "campaign".to_owned(),
            "--engine".to_owned(),
            "warp".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown engine 'warp'"), "{err}");
    }

    #[test]
    fn diag_output_is_engine_independent() {
        // Sliced and scalar dictionary builds file bit-identical
        // signatures, so the whole rendered report must match byte for
        // byte — the property that keeps the diag fixture engine-free
        // even now that an absent flag means sliced.
        let base = |engine: Option<&str>| {
            let mut args = vec![
                "diag".to_owned(),
                "--trials".to_owned(),
                "1".to_owned(),
                "--cycles".to_owned(),
                "1400".to_owned(),
            ];
            if let Some(e) = engine {
                args.push("--engine".to_owned());
                args.push(e.to_owned());
            }
            run(&args).unwrap()
        };
        let default = base(None);
        assert_eq!(base(Some("sliced")), default);
        assert_eq!(base(Some("scalar")), default);
    }

    #[test]
    fn engine_flag_implies_adjudication_in_explore() {
        let out = run(&[
            "explore".to_owned(),
            "--engine".to_owned(),
            "sliced".to_owned(),
            "--policy".to_owned(),
            "inverse-a".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("empirically adjudicated"), "{out}");
        assert!(out.contains("wrst-err-esc"), "{out}");
    }

    #[test]
    fn did_you_mean_suggests_only_close_subcommands() {
        assert_eq!(suggest_subcommand("sytem"), Some("system"));
        assert_eq!(suggest_subcommand("tabel1"), Some("table1"));
        assert_eq!(suggest_subcommand("campain"), Some("campaign"));
        assert_eq!(suggest_subcommand("frobnicate"), None);
        assert_eq!(suggest_subcommand(""), None, "empty input has no hint");
        let err = run(&["sytem".to_owned()]).unwrap_err();
        assert!(err.contains("did you mean 'system'?"), "{err}");
        let err = run(&["frobnicate".to_owned()]).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn edit_distance_is_the_levenshtein_metric() {
        assert_eq!(edit_distance("system", "system"), 0);
        assert_eq!(edit_distance("sytem", "system"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn system_subcommand_validates_flags_and_workloads() {
        let err = run(&[
            "system".to_owned(),
            "--interleave".to_owned(),
            "diagonal".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown interleaving"), "{err}");
        let err = run(&[
            "system".to_owned(),
            "--workload".to_owned(),
            "bogus".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        let err = run(&["system".to_owned(), "--trials".to_owned(), "0".to_owned()]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = run(&["system".to_owned(), "--banks".to_owned(), "2".to_owned()]).unwrap_err();
        assert!(err.contains("unrecognised argument '--banks'"), "{err}");
    }

    #[test]
    fn system_subcommand_reports_every_bank() {
        let out = run(&[
            "system".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--cycles".to_owned(),
            "60".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("memory system: 4 banks"));
        for bank in ["16x1K", "8x512", "8x256", "8x64"] {
            assert!(out.contains(bank), "missing bank {bank}:\n{out}");
        }
        assert!(out.contains("expected lost work"));
    }

    #[test]
    fn unknown_workloads_get_did_you_mean_hints() {
        let err = run(&[
            "campaign".to_owned(),
            "--workload".to_owned(),
            "unifrm".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("did you mean 'uniform'?"), "{err}");
        assert!(err.contains("one of:"), "{err}");
        let err = run(&[
            "system".to_owned(),
            "--workload".to_owned(),
            "hotpsot".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("did you mean 'hotspot'?"), "{err}");
        // Distant garbage lists the models but offers no bogus hint.
        let err = run(&[
            "campaign".to_owned(),
            "--workload".to_owned(),
            "adversarial".to_owned(),
        ])
        .unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
        assert!(err.contains("one of:"), "{err}");
    }

    #[test]
    fn diag_subcommand_validates_flags_and_march_names() {
        let err = run(&[
            "diag".to_owned(),
            "--march".to_owned(),
            "march-c".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("did you mean 'march-c-'?"), "{err}");
        let err = run(&["diag".to_owned(), "--trials".to_owned(), "0".to_owned()]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = run(&["diag".to_owned(), "--budget".to_owned(), "3".to_owned()]).unwrap_err();
        assert!(err.contains("unrecognised argument '--budget'"), "{err}");
    }

    #[test]
    fn campaign_fault_models_select_universes_and_reject_unknowns() {
        let base = |model: &str| {
            run(&[
                "campaign".to_owned(),
                "--fault-model".to_owned(),
                model.to_owned(),
                "--trials".to_owned(),
                "2".to_owned(),
                "--cycles".to_owned(),
                "6".to_owned(),
            ])
            .unwrap()
        };
        let transient = base("transient");
        assert!(transient.contains("fault model = transient"), "{transient}");
        assert!(transient.contains("transient"), "{transient}");
        let mixed = base("mix");
        // The per-process split only renders for mixed campaigns.
        assert!(mixed.contains("process"), "{mixed}");
        assert!(mixed.contains("permanent"), "{mixed}");
        assert!(mixed.contains("intermittent"), "{mixed}");
        // Permanent + no scrub stays exactly the classical rendering.
        let classical =
            run(&["campaign".to_owned(), "--trials".to_owned(), "2".to_owned()]).unwrap();
        assert!(!classical.contains("fault model ="), "{classical}");
        let err = run(&[
            "campaign".to_owned(),
            "--fault-model".to_owned(),
            "transiet".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("did you mean 'transient'?"), "{err}");
    }

    #[test]
    fn campaign_scrubbing_reduces_transient_escapes() {
        // The acceptance experiment: under one-shot flips, a background
        // scrub sweep strictly helps — impossible to show under the old
        // permanent-only model, where the defect never heals and mission
        // traffic eventually finds it either way. Pinned to the scalar
        // engine: at 4 trials the margin is thinner than the RNG-stream
        // difference between the two engines.
        let run_with = |scrub: &str| {
            run(&[
                "campaign".to_owned(),
                "--fault-model".to_owned(),
                "transient".to_owned(),
                "--cycles".to_owned(),
                "600".to_owned(),
                "--trials".to_owned(),
                "4".to_owned(),
                "--scrub-period".to_owned(),
                scrub.to_owned(),
                "--engine".to_owned(),
                "scalar".to_owned(),
            ])
            .unwrap()
        };
        // The cell class's mean escape fraction from the summary table.
        let grab = |out: &str| -> f64 {
            out.lines()
                .find(|l| l.starts_with("cell "))
                .and_then(|l| l.split('|').nth(2))
                .and_then(|v| v.trim().parse().ok())
                .expect("summary carries the cell class row")
        };
        let unscrubbed = grab(&run_with("0"));
        let scrubbed = grab(&run_with("8"));
        assert!(
            scrubbed < unscrubbed,
            "scrubbing must reduce transient escapes: {scrubbed} vs {unscrubbed}"
        );
    }

    #[test]
    fn system_and_diag_accept_the_transient_fault_model() {
        let out = run(&[
            "system".to_owned(),
            "--fault-model".to_owned(),
            "transient".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--cycles".to_owned(),
            "120".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("transient SEUs"), "{out}");
        assert!(out.contains("memory system: 4 banks"), "{out}");
        // The system view rejects mixes its scheduler cannot realise.
        let err = run(&[
            "system".to_owned(),
            "--fault-model".to_owned(),
            "mix".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("one of: permanent, transient"), "{err}");
        let out = run(&[
            "diag".to_owned(),
            "--fault-model".to_owned(),
            "transient".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("transient triage view"), "{out}");
        assert!(out.contains("NO spare burned"), "{out}");
        assert!(out.contains("hard defect confirmed"), "{out}");
    }

    #[test]
    fn guided_explore_prints_rungs_spend_and_front() {
        // --budget implies --guided; a tiny full fidelity keeps it fast.
        let out = run(&[
            "explore".to_owned(),
            "--guided".to_owned(),
            "--trials".to_owned(),
            "8".to_owned(),
        ])
        .unwrap();
        assert!(
            out.contains("guided design-space search: 72 points"),
            "{out}"
        );
        assert!(out.contains("gen | trials"), "{out}");
        assert!(out.contains("scenario-trials"), "{out}");
        assert!(out.contains("Pareto front"), "{out}");
        assert!(out.contains("memo:"), "{out}");
        // A budget smaller than even the screening rung truncates loudly.
        let out = run(&[
            "explore".to_owned(),
            "--budget".to_owned(),
            "100".to_owned(),
            "--trials".to_owned(),
            "8".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("budget exhausted"), "{out}");
    }

    #[test]
    fn guided_explore_is_thread_count_invariant_modulo_memo_races() {
        let at = |threads: &str| {
            run(&[
                "explore".to_owned(),
                "--guided".to_owned(),
                "--trials".to_owned(),
                "8".to_owned(),
                "--threads".to_owned(),
                threads.to_owned(),
            ])
            .unwrap()
        };
        // The memo line counts scheduling races (two workers may both
        // miss the same key), so it is the one line allowed to differ.
        let stable = |out: String| -> String {
            out.lines()
                .filter(|l| !l.starts_with("memo:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let reference = stable(at("1"));
        for threads in ["2", "4", "8"] {
            assert_eq!(reference, stable(at(threads)), "{threads} threads");
        }
    }

    #[test]
    fn campaign_system_fleet_stdout_is_lane_width_invariant() {
        // Lane width is pure scheduling, like the thread count: every
        // subcommand's stdout must be byte-identical at any width. Only
        // the campaign `occupancy:` line names the packing, so it is
        // the one line filtered — analogous to `memo:`/`profile:`.
        let stable = |out: String| -> String {
            out.lines()
                .filter(|l| !l.starts_with("occupancy:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let run_with = |base: &[&str], width: &str| -> String {
            let mut args: Vec<String> = base.iter().map(|s| (*s).to_owned()).collect();
            args.extend(["--lane-width".to_owned(), width.to_owned()]);
            stable(run(&args).unwrap())
        };
        let cases: [&[&str]; 3] = [
            &[
                "campaign",
                "--trials",
                "4",
                "--cycles",
                "8",
                "--fault-model",
                "mix",
            ],
            &["system", "--trials", "2", "--cycles", "96"],
            &["fleet", "--preset", "small", "--devices", "6"],
        ];
        for case in cases {
            let reference = run_with(case, "512");
            for width in ["1", "7", "64", "100"] {
                assert_eq!(
                    reference,
                    run_with(case, width),
                    "{case:?} at lane width {width}"
                );
            }
        }
    }

    #[test]
    fn lane_width_flag_is_validated() {
        for bad in ["0", "513", "wide"] {
            let err = run(&[
                "campaign".to_owned(),
                "--lane-width".to_owned(),
                bad.to_owned(),
            ])
            .unwrap_err();
            assert!(err.contains("--lane-width"), "{err}");
        }
    }

    #[test]
    fn guided_flags_get_did_you_mean_hints() {
        let err = run(&[
            "explore".to_owned(),
            "--guided".to_owned(),
            "--space".to_owned(),
            "millon".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("did you mean 'million'?"), "{err}");
        let err = run(&[
            "explore".to_owned(),
            "--guided".to_owned(),
            "--engine".to_owned(),
            "slced".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("did you mean 'sliced'?"), "{err}");
    }

    #[test]
    fn explore_fault_mix_implies_adjudication_and_prints_per_mix_fronts() {
        let out = run(&[
            "explore".to_owned(),
            "--fault-mix".to_owned(),
            "all".to_owned(),
            "--trials".to_owned(),
            "1".to_owned(),
            "--policy".to_owned(),
            "inverse-a".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("empirically adjudicated"), "{out}");
        assert!(out.contains("per-mix Pareto fronts"), "{out}");
        for mix in ["permanent", "transient", "intermittent", "mix"] {
            assert!(out.contains(&format!("fault mix = {mix}")), "{mix}\n{out}");
        }
        let err = run(&[
            "explore".to_owned(),
            "--fault-mix".to_owned(),
            "bogus".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("unknown fault mix"), "{err}");
    }

    #[test]
    fn version_prints_crate_and_toolchain() {
        let out = run(&["--version".to_owned()]).unwrap();
        assert!(
            out.starts_with(&format!("scm {} ", env!("CARGO_PKG_VERSION"))),
            "{out}"
        );
        assert!(out.contains("toolchain stable"), "{out}");
        assert_eq!(run(&["-V".to_owned()]).unwrap(), out);
        let err = run(&["--version".to_owned(), "--bogus".to_owned()]).unwrap_err();
        assert!(err.contains("unrecognised argument"), "{err}");
    }

    #[test]
    fn observability_flags_render_trace_metrics_and_profile() {
        let base = vec![
            "campaign".to_owned(),
            "--trials".to_owned(),
            "2".to_owned(),
            "--cycles".to_owned(),
            "6".to_owned(),
        ];
        let mut args = base.clone();
        args.extend(["--trace".to_owned(), "--metrics".to_owned()]);
        let out = run(&args).unwrap();
        assert!(
            out.contains("# scm-trace v1 cmd=campaign clock=cycles"),
            "{out}"
        );
        assert!(out.contains("ev=detect"), "{out}");
        assert!(out.contains("counters:"), "{out}");
        assert!(out.contains("ev.activate"), "{out}");
        let mut args = base.clone();
        args.push("--profile".to_owned());
        let out = run(&args).unwrap();
        assert!(out.contains("profile: phase=campaign-fan-out"), "{out}");
        assert!(out.contains("profile: phase=total"), "{out}");
        // Without the flags the classical stdout stays untouched.
        let plain = run(&base).unwrap();
        assert!(!plain.contains("scm-trace"), "{plain}");
        assert!(!plain.contains("profile:"), "{plain}");
    }

    #[test]
    fn trace_file_round_trips_through_summarize_and_chrome() {
        let path = std::env::temp_dir().join("scm-cli-trace-roundtrip.trace");
        let path_s = path.to_str().unwrap().to_owned();
        let out = run(&[
            "campaign".to_owned(),
            "--trials".to_owned(),
            "2".to_owned(),
            "--cycles".to_owned(),
            "6".to_owned(),
            format!("--trace={path_s}"),
            "--metrics".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("trace -> "), "{out}");
        // summarize re-aggregates the file into the very table
        // --metrics printed when the trace was recorded.
        let summarized =
            run(&["trace".to_owned(), "summarize".to_owned(), path_s.clone()]).unwrap();
        let table = |text: &str| text[text.find("counters:").expect("metrics table")..].to_owned();
        assert_eq!(table(&out), table(&summarized));
        let chrome = run(&["trace".to_owned(), "chrome".to_owned(), path_s.clone()]).unwrap();
        assert!(chrome.trim_start().starts_with('['), "{chrome}");
        assert!(chrome.contains("\"ph\": \"i\""), "{chrome}");
        let err = run(&["trace".to_owned(), "summarise".to_owned(), path_s]).unwrap_err();
        assert!(err.contains("did you mean 'summarize'?"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn explore_trace_implies_guided_and_emits_rung_prunes() {
        let out = run(&[
            "explore".to_owned(),
            "--trace".to_owned(),
            "--trials".to_owned(),
            "8".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("guided design-space search"), "{out}");
        assert!(out.contains("clock=scenario-trials"), "{out}");
        assert!(out.contains("ev=rung-prune"), "{out}");
    }

    #[test]
    fn cli_trace_is_byte_identical_across_threads_and_engines() {
        // The PR's acceptance contract, enforced on the user-visible
        // surface: `scm campaign --trace` emits the same bytes at any
        // thread count and under either engine flag.
        let trace_of = |extra: &[&str]| {
            let mut args: Vec<String> = [
                "campaign",
                "--trials",
                "3",
                "--cycles",
                "8",
                "--fault-model",
                "mix",
                "--scrub-period",
                "4",
                "--trace",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
            args.extend(extra.iter().map(|s| (*s).to_owned()));
            let out = run(&args).unwrap();
            out[out.find("# scm-trace").expect("trace section")..].to_owned()
        };
        let reference = trace_of(&["--threads", "1"]);
        assert!(reference.contains("ev="), "{reference}");
        for threads in ["2", "4", "8"] {
            assert_eq!(
                trace_of(&["--threads", threads]),
                reference,
                "threads {threads}"
            );
        }
        assert_eq!(trace_of(&["--engine", "scalar"]), reference, "scalar");
        assert_eq!(trace_of(&["--engine", "sliced"]), reference, "sliced");
    }

    #[test]
    fn fleet_metrics_fold_lands_in_the_registry() {
        let out = run(&[
            "fleet".to_owned(),
            "--trace".to_owned(),
            "--metrics".to_owned(),
        ])
        .unwrap();
        assert!(
            out.contains("# scm-trace v1 cmd=fleet clock=devices"),
            "{out}"
        );
        assert!(out.contains("fleet.edge.devices"), "{out}");
        assert!(out.contains("fleet.datacenter.strikes"), "{out}");
    }

    #[test]
    fn campaign_selects_models_and_rejects_unknowns() {
        let out = run(&[
            "campaign".to_owned(),
            "--workload".to_owned(),
            "hotspot".to_owned(),
            "--trials".to_owned(),
            "2".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("workload = hotspot"));
        assert!(out.contains("fault-injection campaign"));
        assert!(run(&[
            "campaign".to_owned(),
            "--workload".to_owned(),
            "bogus".to_owned()
        ])
        .is_err());
    }
}
