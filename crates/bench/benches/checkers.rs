//! Criterion bench for checker evaluation: behavioural membership vs
//! gate-level netlists, plus ROM encoding.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scm_checkers::{Checker, MOutOfNChecker};
use scm_codes::{CodewordMap, MOutOfN};
use scm_logic::Netlist;
use scm_rom::RomMatrix;
use std::hint::black_box;

fn bench_checkers(c: &mut Criterion) {
    let code = MOutOfN::new(3, 5).unwrap();
    let chk = MOutOfNChecker::new(code);
    let mut nl = Netlist::new();
    let ins = nl.inputs(5);
    let rails = chk.build_netlist(&mut nl, &ins);
    nl.expose(rails.0);
    nl.expose(rails.1);

    let mut g = c.benchmark_group("checker-3of5");
    g.throughput(Throughput::Elements(32));
    g.bench_function("behavioral-32-words", |b| {
        b.iter(|| {
            for w in 0u64..32 {
                black_box(chk.eval(w));
            }
        })
    });
    g.bench_function("netlist-32-words", |b| {
        b.iter(|| {
            for w in 0u64..32 {
                black_box(nl.eval_word(w, None).outputs_word());
            }
        })
    });
    g.finish();

    let map = CodewordMap::mod_a(code, 9, 128).unwrap();
    let rom = RomMatrix::from_map(&map);
    let mut g = c.benchmark_group("rom-128-lines");
    g.throughput(Throughput::Elements(128));
    g.bench_function("encode-one-hot-sweep", |b| {
        b.iter(|| {
            for line in 0..128usize {
                black_box(rom.eval([line]));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
