//! Scheme overhead breakdown.
//!
//! The self-checking additions to a RAM (Figure 3) are:
//!
//! * two NOR-matrix ROMs — `r2` columns × `2^p` lines on the row decoder,
//!   `r1` columns × `2^s` lines on the column decoder;
//! * two `q`-out-of-`r` checkers on the ROM outputs (priced from the gate
//!   census of the actually-emitted checker netlists);
//! * the data-path parity bit — one extra storage column group
//!   (`2^s` physical columns × `2^p` rows = one bit per word);
//! * the parity checker over `m + 1` bits.
//!
//! The paper's Table 1/2 headline ("% of hardware increase") covers the
//! decoder-checking ROMs; it explicitly calls the two code checkers
//! "insignificant" and prices parity separately (Section IV). The breakdown
//! keeps every component visible so any aggregation can be reported.

use crate::ram_area::{ram_area, RamOrganization};
use crate::tech::TechnologyParams;
use scm_checkers::{Checker, MOutOfNChecker, ParityChecker};
use scm_codes::parity::ParityCode;
use scm_codes::MOutOfN;
use scm_logic::stats::gate_stats;
use scm_logic::Netlist;

/// Complete additive-area breakdown (normalised RAM-cell units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadBreakdown {
    /// Base RAM area (cell array + periphery).
    pub ram: f64,
    /// Row-decoder ROM (`r2 × 2^p` bit positions).
    pub rom_row: f64,
    /// Column-decoder ROM (`r1 × 2^s` bit positions).
    pub rom_col: f64,
    /// The two `q`-out-of-`r` checkers.
    pub code_checkers: f64,
    /// Parity storage column group (one bit per word).
    pub parity_storage: f64,
    /// Parity checker over `m + 1` bits.
    pub parity_checker: f64,
}

impl OverheadBreakdown {
    /// The paper's Table 1/2 headline: decoder-checking ROM area as a
    /// percentage of the base RAM area.
    pub fn decoder_checking_percent(&self) -> f64 {
        100.0 * (self.rom_row + self.rom_col) / self.ram
    }

    /// Decoder checking including the two code checkers.
    pub fn decoder_checking_with_checkers_percent(&self) -> f64 {
        100.0 * (self.rom_row + self.rom_col + self.code_checkers) / self.ram
    }

    /// Parity-path overhead percentage (storage + checker).
    pub fn parity_percent(&self) -> f64 {
        100.0 * (self.parity_storage + self.parity_checker) / self.ram
    }

    /// Everything together.
    pub fn total_percent(&self) -> f64 {
        100.0
            * (self.rom_row
                + self.rom_col
                + self.code_checkers
                + self.parity_storage
                + self.parity_checker)
            / self.ram
    }
}

/// Gate-equivalent count of a `q`-out-of-`r` checker, measured from the
/// emitted netlist.
pub fn mofn_checker_gate_equivalents(code: MOutOfN) -> f64 {
    let checker = MOutOfNChecker::new(code);
    let mut nl = Netlist::new();
    let ins = nl.inputs(checker.input_width());
    let _ = checker.build_netlist(&mut nl, &ins);
    gate_stats(&nl).gate_equivalents
}

/// Gate-equivalent count of the parity checker over `data_bits + 1` inputs.
///
/// For `data_bits ≤ 63` the census comes from the actual
/// [`ParityChecker`] netlist; wider words (the paper's 64-bit RAM) use the
/// identical dual-XOR-tree structure emitted directly (the behavioural
/// checker's `u64` transport caps at 63 data bits, the hardware does not).
pub fn parity_checker_gate_equivalents(data_bits: u32) -> f64 {
    let mut nl = Netlist::new();
    if data_bits <= 63 {
        let checker = ParityChecker::new(ParityCode::even(data_bits as usize));
        let ins = nl.inputs(checker.input_width());
        let _ = checker.build_netlist(&mut nl, &ins);
    } else {
        let total = data_bits as usize + 1;
        let ins = nl.inputs(total);
        let split = total / 2;
        let _t = nl.xor_tree(&ins[..split]);
        let hi = nl.xor_tree(&ins[split..]);
        let _f = nl.inv(hi); // even-parity sense, as in ParityChecker
    }
    gate_stats(&nl).gate_equivalents
}

/// Compute the full overhead breakdown for a RAM protected with codes of
/// width `r_row`/`r_col` on its row/column decoders (the tables use the same
/// code for both, but asymmetric configurations are first-class).
pub fn scheme_overhead(
    org: RamOrganization,
    row_code: MOutOfN,
    col_code: MOutOfN,
    tech: &TechnologyParams,
) -> OverheadBreakdown {
    let base = ram_area(org, tech);
    let rom_row = tech.rom_bit_area * row_code.width_u32() as f64 * org.rows() as f64;
    let rom_col = tech.rom_bit_area * col_code.width_u32() as f64 * org.mux_factor() as f64;
    let code_checkers = tech.gate_equivalent_area
        * (mofn_checker_gate_equivalents(row_code) + mofn_checker_gate_equivalents(col_code));
    let parity_storage = org.words() as f64 * tech.ram_cell_area;
    let parity_checker =
        tech.gate_equivalent_area * parity_checker_gate_equivalents(org.word_bits());
    OverheadBreakdown {
        ram: base.total(),
        rom_row,
        rom_col,
        code_checkers,
        parity_storage,
        parity_checker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram_area::paper_rams;

    fn code(q: u32, r: u32) -> MOutOfN {
        MOutOfN::new(q, r).unwrap()
    }

    #[test]
    fn paper_anchor_three_out_of_five_16x2k() {
        // The calibration anchor: 3-out-of-5 on 16×2K → ≈ 24.5 % (paper 24.8).
        let tech = TechnologyParams::default();
        let b = scheme_overhead(paper_rams()[0], code(3, 5), code(3, 5), &tech);
        let pct = b.decoder_checking_percent();
        assert!((pct - 24.8).abs() / 24.8 < 0.02, "got {pct}");
    }

    #[test]
    fn parity_storage_fraction_is_one_over_m() {
        // Parity adds 1/m of the cell array: 6.25 % for 16-bit words
        // (Section IV), slightly diluted by the periphery in the total.
        let tech = TechnologyParams::default();
        let b = scheme_overhead(paper_rams()[0], code(3, 5), code(3, 5), &tech);
        let storage_vs_cells = b.parity_storage / 32768.0;
        assert!((storage_vs_cells - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn checkers_are_insignificant_vs_roms() {
        // The paper's claim: code checkers ≪ ROMs. Verify < 10 % of ROM area
        // on the smallest RAM (worst case for the claim).
        let tech = TechnologyParams::default();
        let b = scheme_overhead(paper_rams()[0], code(3, 5), code(3, 5), &tech);
        assert!(
            b.code_checkers < 0.1 * (b.rom_row + b.rom_col),
            "checkers {} vs roms {}",
            b.code_checkers,
            b.rom_row + b.rom_col
        );
    }

    #[test]
    fn overhead_scales_linearly_with_r() {
        let tech = TechnologyParams::default();
        let org = paper_rams()[1];
        let p5 = scheme_overhead(org, code(3, 5), code(3, 5), &tech).decoder_checking_percent();
        let p9 = scheme_overhead(org, code(5, 9), code(5, 9), &tech).decoder_checking_percent();
        assert!(
            (p9 / p5 - 9.0 / 5.0).abs() < 1e-9,
            "ROM headline must be linear in r"
        );
    }

    #[test]
    fn asymmetric_codes_supported() {
        let tech = TechnologyParams::default();
        let org = paper_rams()[0];
        let b = scheme_overhead(org, code(5, 9), code(2, 3), &tech);
        // Row ROM dominates: 9 × 256 vs 3 × 8 bit positions.
        assert!(b.rom_row > 50.0 * b.rom_col);
    }

    #[test]
    fn gate_equivalents_are_positive_and_modest() {
        for (q, r) in [(1u32, 2u32), (2, 4), (3, 5), (5, 9), (9, 18)] {
            let ge = mofn_checker_gate_equivalents(code(q, r));
            assert!(ge > 0.0 && ge < 2000.0, "{q}/{r}: {ge}");
        }
        let ge = parity_checker_gate_equivalents(64);
        assert!(ge > 0.0 && ge < 300.0);
    }
}
