//! The exploration vocabulary: design points and the axis grids that
//! enumerate them.
//!
//! A [`DesignPoint`] is one fully specified candidate — geometry × latency
//! requirement × selection policy × scrub policy × workload model. An
//! [`ExplorationSpace`] is the cartesian product of axis value lists; its
//! [`points`](ExplorationSpace::points) enumeration order is deterministic,
//! which is what lets the parallel evaluator return bit-identical result
//! vectors at every thread count.

use scm_area::RamOrganization;
use scm_codes::selection::SelectionPolicy;

/// Background-scrub policy of a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScrubPolicy {
    /// No scrubber: detection latency is probabilistic (the paper's model).
    Off,
    /// A background sequential sweep, one scrub read per slot: the
    /// evaluator additionally reports the *hard* worst-case
    /// steps-to-detection bound of `scm_memory::scrub`.
    SequentialSweep,
}

impl ScrubPolicy {
    /// Short CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            ScrubPolicy::Off => "off",
            ScrubPolicy::SequentialSweep => "sequential-sweep",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(name: &str) -> Option<ScrubPolicy> {
        match name {
            "off" => Some(ScrubPolicy::Off),
            "sequential-sweep" => Some(ScrubPolicy::SequentialSweep),
            _ => None,
        }
    }
}

/// One fully specified candidate in the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// RAM geometry (words × word bits, column mux).
    pub geometry: RamOrganization,
    /// Tolerated detection latency `c` in cycles.
    pub cycles: u32,
    /// Tolerated escape probability `Pndc` after `c` cycles.
    pub pndc: f64,
    /// Escape-formula policy driving code selection.
    pub policy: SelectionPolicy,
    /// Background scrub policy.
    pub scrub: ScrubPolicy,
    /// Workload model name (resolved through the evaluator's registry).
    pub workload: String,
}

impl DesignPoint {
    /// A point with the paper's defaults: no scrub, uniform workload.
    pub fn paper(
        geometry: RamOrganization,
        cycles: u32,
        pndc: f64,
        policy: SelectionPolicy,
    ) -> Self {
        DesignPoint {
            geometry,
            cycles,
            pndc,
            policy,
            scrub: ScrubPolicy::Off,
            workload: "uniform".to_owned(),
        }
    }

    /// Compact label for reports, e.g. `1Kx16/c=10/1e-9/inverse-a`.
    pub fn label(&self) -> String {
        format!(
            "{}/c={}/{:.0e}/{}/{}/{}",
            self.geometry.name(),
            self.cycles,
            self.pndc,
            self.policy.name(),
            self.scrub.name(),
            self.workload
        )
    }
}

/// Axis lists whose cartesian product is the candidate set.
#[derive(Debug, Clone)]
pub struct ExplorationSpace {
    /// Geometries to cover.
    pub geometries: Vec<RamOrganization>,
    /// Latency budgets `c`.
    pub cycles: Vec<u32>,
    /// Escape budgets `Pndc`.
    pub pndcs: Vec<f64>,
    /// Selection policies.
    pub policies: Vec<SelectionPolicy>,
    /// Scrub policies.
    pub scrubs: Vec<ScrubPolicy>,
    /// Workload model names.
    pub workloads: Vec<String>,
}

impl ExplorationSpace {
    /// The paper's slice: its three published RAMs, both tables' budget
    /// axes, the exact worst-block policy, no scrub, uniform workload.
    pub fn paper_defaults() -> Self {
        ExplorationSpace {
            geometries: scm_area::ram_area::paper_rams().to_vec(),
            cycles: vec![2, 5, 10, 20, 30, 40],
            pndcs: vec![1e-2, 1e-5, 1e-9, 1e-15, 1e-20, 1e-30],
            policies: vec![SelectionPolicy::WorstBlockExact],
            scrubs: vec![ScrubPolicy::Off],
            workloads: vec!["uniform".to_owned()],
        }
    }

    /// Number of candidate points.
    pub fn len(&self) -> usize {
        self.geometries.len()
            * self.cycles.len()
            * self.pndcs.len()
            * self.policies.len()
            * self.scrubs.len()
            * self.workloads.len()
    }

    /// Whether the product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerate every point, in a fixed deterministic order (workload,
    /// scrub, policy, geometry, pndc, cycles — innermost last).
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut out = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for &scrub in &self.scrubs {
                for &policy in &self.policies {
                    for &geometry in &self.geometries {
                        for &pndc in &self.pndcs {
                            for &cycles in &self.cycles {
                                out.push(DesignPoint {
                                    geometry,
                                    cycles,
                                    pndc,
                                    policy,
                                    scrub,
                                    workload: workload.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_product_size_and_order_are_deterministic() {
        let space = ExplorationSpace {
            geometries: vec![RamOrganization::new(64, 8, 4)],
            cycles: vec![2, 10],
            pndcs: vec![1e-2, 1e-9],
            policies: SelectionPolicy::ALL.to_vec(),
            scrubs: vec![ScrubPolicy::Off, ScrubPolicy::SequentialSweep],
            workloads: vec!["uniform".to_owned(), "hotspot".to_owned()],
        };
        assert_eq!(space.len(), 32);
        let a = space.points();
        let b = space.points();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        // Innermost axis varies fastest.
        assert_eq!(a[0].cycles, 2);
        assert_eq!(a[1].cycles, 10);
        assert_eq!(a[0].pndc, 1e-2);
        assert_eq!(a[2].pndc, 1e-9);
    }

    #[test]
    fn parse_roundtrips() {
        for scrub in [ScrubPolicy::Off, ScrubPolicy::SequentialSweep] {
            assert_eq!(ScrubPolicy::parse(scrub.name()), Some(scrub));
        }
        assert_eq!(ScrubPolicy::parse("nope"), None);
        for policy in SelectionPolicy::ALL {
            assert_eq!(SelectionPolicy::parse(policy.name()), Some(policy));
        }
    }

    #[test]
    fn labels_are_readable() {
        let p = DesignPoint::paper(
            RamOrganization::with_mux8(1024, 16),
            10,
            1e-9,
            SelectionPolicy::InverseA,
        );
        assert_eq!(p.label(), "16x1K/c=10/1e-9/inverse-a/off/uniform");
    }
}
