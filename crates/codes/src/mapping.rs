//! Address → codeword mappings (paper, Sections III.1–III.2).
//!
//! The NOR matrix attached to a decoder must emit, for each decoder output
//! line (i.e. each address value `A`), a codeword of the chosen unordered
//! code. Which codeword matters enormously for detection latency:
//!
//! * **`B = A mod a`** (with the codeword of rank `B`): distributes the `a`
//!   used codewords uniformly over the address space, so every decoding
//!   block at every bit offset `j` sees ≈`a` distinct codewords — *provided
//!   `a` is odd*. If `gcd(2^j, a) = f > 1`, a block at offset `j` only ever
//!   exercises `a/f` codewords and detection degrades by a factor `f`
//!   (fatally, `f = a`, for even `a` at `j ≥ 1`). Hence the paper's rule:
//!   `a` odd, taken as `C(q,r)` if odd else `C(q,r) − 1`.
//! * **Decoder-input parity** (the 1-out-of-2 special case): codeword
//!   `(odd parity, even parity)` of the address bits. Any two addresses
//!   differing in an odd number of bits get different codewords, which is
//!   what replaces the hopeless `mod 2` mapping.
//! * **Berger identity mapping** (\[NIC 94\] zero-latency endpoint): every
//!   line gets a *unique* codeword — the Berger encoding of its address —
//!   so every two-line selection is detected instantly.
//!
//! When `a = C(q,r) − 1`, one codeword is never emitted; the paper's
//! "complete the code" fix re-maps a single address onto it so the
//! downstream `q`-out-of-`r` checker is fully exercised during normal
//! operation. [`CodewordMap`] applies this fix automatically whenever the
//! address space is large enough.

use crate::berger::BergerCode;
use crate::mofn::MOutOfN;
use crate::{Code, CodeError};

/// Which mapping strategy a [`CodewordMap`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingKind {
    /// `B = A mod a`, codeword of rank `B` in a `q`-out-of-`r` code.
    ModA {
        /// The modulus `a` (number of distinct codewords in use).
        a: u64,
    },
    /// 1-out-of-2 codeword `(odd parity, even parity)` of the address bits.
    InputParity,
    /// Unique Berger codeword per address (zero-latency endpoint).
    Berger,
}

#[derive(Clone)]
enum MapCode {
    MOutOfN(MOutOfN),
    OneOutOfTwo,
    Berger(BergerCode),
}

/// A concrete address → codeword mapping for a decoder with `num_lines`
/// output lines (addresses `0 .. num_lines`).
///
/// Beyond the base strategy, individual lines can be **re-mapped** onto
/// explicit codeword ranks. The paper's completion fix is the first such
/// entry (applied automatically by [`CodewordMap::mod_a`]); the
/// diagnosis/repair layer uses the same machinery to program spare-row
/// lines with their own codewords ([`CodewordMap::with_remap`]).
///
/// # Example
/// ```
/// use scm_codes::{CodewordMap, MOutOfN};
/// // The paper's 3-out-of-5 / a = 9 scheme on a 32-line decoder.
/// let map = CodewordMap::mod_a(MOutOfN::new(3, 5)?, 9, 32)?;
/// assert_eq!(map.width(), 5);
/// // Addresses 0 and 9 share a codeword (9 mod 9 == 0 mod 9)...
/// assert_eq!(map.codeword_for(0), map.codeword_for(18));
/// // ...but the bitwise AND of two *different* codewords is never valid.
/// let w = map.codeword_for(1) & map.codeword_for(2);
/// assert!(!map.is_codeword(w));
/// # Ok::<(), scm_codes::CodeError>(())
/// ```
#[derive(Clone)]
pub struct CodewordMap {
    kind: MappingKind,
    code: MapCode,
    num_lines: u64,
    /// `(address, rank)` re-map entries, looked up before the base
    /// strategy. Entry 0 is the paper's completion fix when `a = C(q,r) − 1`
    /// leaves a codeword unused; later entries come from
    /// [`CodewordMap::with_remap`] (spare-line programming).
    remapped: Vec<(u64, u128)>,
}

impl std::fmt::Debug for CodewordMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodewordMap")
            .field("kind", &self.kind)
            .field("code", &self.code_name())
            .field("num_lines", &self.num_lines)
            .field("remapped", &self.remapped)
            .finish()
    }
}

impl CodewordMap {
    /// Build a `mod a` mapping into a `q`-out-of-`r` code.
    ///
    /// # Errors
    /// * [`CodeError::InvalidModulus`] if `a < 2`, or if `a` is even while
    ///   `a < num_lines` (codeword collisions with an even modulus destroy
    ///   detection for sub-blocks at bit offsets `j ≥ 1`), or `a = 2`
    ///   (the paper mandates the parity mapping instead — use
    ///   [`CodewordMap::input_parity`]).
    /// * [`CodeError::RankOutOfRange`] if `a` exceeds the code's codeword
    ///   count.
    pub fn mod_a(code: MOutOfN, a: u64, num_lines: u64) -> Result<Self, CodeError> {
        if a <= 2 || (a.is_multiple_of(2) && a < num_lines) {
            return Err(CodeError::InvalidModulus { a });
        }
        let count = code.count();
        if (a as u128) > count {
            return Err(CodeError::RankOutOfRange {
                rank: a as u128,
                count,
            });
        }
        // Completion fix: if exactly the top codeword-space is unused and the
        // address space has collisions anyway, re-map address `a` (a duplicate
        // of residue 0) onto the first unused rank. This matches the paper:
        // "one address mapped to some other code word can be mapped to this
        // code word".
        let remapped = if (a as u128) < count && num_lines > a {
            vec![(a, a as u128)]
        } else {
            Vec::new()
        };
        Ok(CodewordMap {
            kind: MappingKind::ModA { a },
            code: MapCode::MOutOfN(code),
            num_lines,
            remapped,
        })
    }

    /// Build the 1-out-of-2 decoder-input-parity mapping.
    pub fn input_parity(num_lines: u64) -> Self {
        CodewordMap {
            kind: MappingKind::InputParity,
            code: MapCode::OneOutOfTwo,
            num_lines,
            remapped: Vec::new(),
        }
    }

    /// Build the \[NIC 94\] zero-latency Berger identity mapping for a
    /// decoder with `num_lines = 2^address_bits` outputs.
    ///
    /// # Errors
    /// [`CodeError::InvalidBergerWidth`] for unsupported address widths.
    pub fn berger(address_bits: u32, num_lines: u64) -> Result<Self, CodeError> {
        let code = BergerCode::new(address_bits)?;
        Ok(CodewordMap {
            kind: MappingKind::Berger,
            code: MapCode::Berger(code),
            num_lines,
            remapped: Vec::new(),
        })
    }

    /// Zero-latency `q`-out-of-`r` identity mapping (`a = num_lines`): every
    /// line gets a distinct codeword of the smallest centred code that is
    /// large enough. This is the other \[NIC 94\] implementation option.
    ///
    /// # Errors
    /// [`CodeError::CodeTooLarge`] if no `r ≤ 64` suffices.
    pub fn identity_mofn(num_lines: u64) -> Result<Self, CodeError> {
        let (r, _count) = crate::binom::smallest_central_width(num_lines as u128).ok_or(
            CodeError::CodeTooLarge {
                required: num_lines as u128,
            },
        )?;
        let code = MOutOfN::centered(r)?;
        Ok(CodewordMap {
            kind: MappingKind::ModA { a: num_lines },
            code: MapCode::MOutOfN(code),
            num_lines,
            remapped: Vec::new(),
        })
    }

    /// Re-map one line onto an explicit codeword rank — the generalised
    /// spare-codeword machinery. The diagnosis/repair layer uses this to
    /// program a spare row's decoder line with its own (ideally otherwise
    /// unused, see [`CodewordMap::spare_rank`]) codeword, and the
    /// degenerate-map tests use it to construct deliberately colliding
    /// mappings. Later entries for the same address win.
    ///
    /// # Errors
    /// [`CodeError::RankOutOfRange`] when the address is outside the line
    /// space, the rank is outside the code, or the mapping is a Berger
    /// identity map (whose codewords are computed from the address, so no
    /// rank indirection exists to re-program).
    pub fn with_remap(mut self, address: u64, rank: u128) -> Result<Self, CodeError> {
        if address >= self.num_lines {
            return Err(CodeError::RankOutOfRange {
                rank: address as u128,
                count: self.num_lines as u128,
            });
        }
        let count = match &self.code {
            MapCode::MOutOfN(c) => c.count(),
            MapCode::OneOutOfTwo => 2,
            MapCode::Berger(_) => 0, // encode(address) ignores ranks entirely
        };
        if rank >= count {
            return Err(CodeError::RankOutOfRange { rank, count });
        }
        self.remapped.push((address, rank));
        Ok(self)
    }

    /// The re-map entries in effect, completion fix included.
    pub fn remaps(&self) -> &[(u64, u128)] {
        &self.remapped
    }

    /// The smallest codeword rank no line currently uses — the natural
    /// codeword for a spare line, keeping the checker's codeword diet
    /// growing rather than aliasing an existing line. `None` when every
    /// rank of the code is already in use. O(`num_lines`).
    pub fn spare_rank(&self) -> Option<u128> {
        let count = match &self.code {
            MapCode::MOutOfN(c) => c.count(),
            MapCode::OneOutOfTwo => 2,
            MapCode::Berger(_) => return None,
        };
        let used: std::collections::BTreeSet<u128> =
            (0..self.num_lines).map(|a| self.rank_for(a)).collect();
        (0..count).find(|rank| !used.contains(rank))
    }

    /// The mapping strategy in use.
    pub fn kind(&self) -> MappingKind {
        self.kind
    }

    /// Number of decoder output lines this map serves.
    pub fn num_lines(&self) -> u64 {
        self.num_lines
    }

    /// Codeword width `r` emitted by the NOR matrix.
    pub fn width(&self) -> usize {
        match &self.code {
            MapCode::MOutOfN(c) => c.width(),
            MapCode::OneOutOfTwo => 2,
            MapCode::Berger(c) => c.width(),
        }
    }

    /// Name of the underlying code (e.g. `"3-out-of-5"`).
    pub fn code_name(&self) -> String {
        match &self.code {
            MapCode::MOutOfN(c) => c.name(),
            MapCode::OneOutOfTwo => "1-out-of-2".to_owned(),
            MapCode::Berger(c) => c.name(),
        }
    }

    /// Membership test for the underlying code.
    pub fn is_codeword(&self, word: u64) -> bool {
        match &self.code {
            MapCode::MOutOfN(c) => c.is_codeword(word),
            MapCode::OneOutOfTwo => word == 0b01 || word == 0b10,
            MapCode::Berger(c) => c.is_codeword(word),
        }
    }

    /// The codeword *rank* assigned to an address (before codeword lookup).
    ///
    /// # Panics
    /// Panics if `address >= num_lines`.
    pub fn rank_for(&self, address: u64) -> u128 {
        assert!(
            address < self.num_lines,
            "address {address} out of {} lines",
            self.num_lines
        );
        if let Some(&(_, rank)) = self.remapped.iter().rev().find(|&&(a, _)| a == address) {
            return rank;
        }
        match self.kind {
            MappingKind::ModA { a } => (address % a) as u128,
            MappingKind::InputParity => (address.count_ones() % 2) as u128,
            MappingKind::Berger => address as u128,
        }
    }

    /// The codeword assigned to an address.
    ///
    /// # Panics
    /// Panics if `address >= num_lines`.
    pub fn codeword_for(&self, address: u64) -> u64 {
        let rank = self.rank_for(address);
        match &self.code {
            MapCode::MOutOfN(c) => c.word_at(rank).expect("rank < a <= count"),
            MapCode::OneOutOfTwo => {
                if rank == 1 {
                    0b01 // odd parity → rail pattern (odd=1, even=0)
                } else {
                    0b10
                }
            }
            MapCode::Berger(c) => c.encode(address),
        }
    }

    /// Full table of codewords for all lines — the ROM programming image.
    pub fn table(&self) -> Vec<u64> {
        (0..self.num_lines).map(|a| self.codeword_for(a)).collect()
    }

    /// Do two addresses share a codeword? (If they do, a stuck-at-1 fault
    /// selecting both lines is *undetectable* — the paper's fundamental
    /// limitation when `a <` number of lines.)
    pub fn same_codeword(&self, a1: u64, a2: u64) -> bool {
        self.rank_for(a1) == self.rank_for(a2)
    }

    /// The effective number of distinct codewords in use.
    pub fn distinct_codewords(&self) -> u64 {
        // The closed forms below only hold for the constructor-applied
        // completion fix; arbitrary re-maps can alias or extend the base
        // set, so count exactly (explicitly re-mapped maps are small).
        let completion_fix_only = match (self.kind, self.remapped.as_slice()) {
            (_, []) => true,
            (MappingKind::ModA { a }, [(addr, rank)]) => *addr == a && *rank == a as u128,
            _ => false,
        };
        if !completion_fix_only {
            let ranks: std::collections::BTreeSet<u128> =
                (0..self.num_lines).map(|a| self.rank_for(a)).collect();
            return ranks.len() as u64;
        }
        match self.kind {
            MappingKind::ModA { a } => {
                let base = a.min(self.num_lines);
                base + if self.remapped.is_empty() { 0 } else { 1 }
            }
            MappingKind::InputParity => 2.min(self.num_lines),
            MappingKind::Berger => self.num_lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_map(lines: u64) -> CodewordMap {
        CodewordMap::mod_a(MOutOfN::new(3, 5).unwrap(), 9, lines).unwrap()
    }

    #[test]
    fn mod_a_rejects_bad_moduli() {
        let code = MOutOfN::new(3, 5).unwrap();
        assert!(matches!(
            CodewordMap::mod_a(code, 2, 16),
            Err(CodeError::InvalidModulus { a: 2 })
        ));
        assert!(matches!(
            CodewordMap::mod_a(code, 4, 16),
            Err(CodeError::InvalidModulus { a: 4 })
        ));
        assert!(matches!(
            CodewordMap::mod_a(code, 11, 16),
            Err(CodeError::RankOutOfRange { .. })
        ));
        // Even modulus with no collisions (a >= lines) is fine: identity-ish.
        assert!(CodewordMap::mod_a(code, 10, 10).is_ok());
        assert!(CodewordMap::mod_a(code, 9, 16).is_ok());
    }

    #[test]
    fn mod_a_residue_structure() {
        let map = paper_map(64);
        for addr in 0..64u64 {
            if addr != 9 {
                // completion fix moved address 9
                assert_eq!(map.rank_for(addr), (addr % 9) as u128, "addr {addr}");
            }
        }
        assert_eq!(
            map.rank_for(9),
            9,
            "completion fix must use the spare codeword"
        );
        assert_eq!(map.distinct_codewords(), 10);
    }

    #[test]
    fn completion_fix_covers_all_codewords() {
        // With a = 9 out of C(3,5) = 10 codewords and >= 10 lines, all 10
        // codewords must appear in the ROM image (exercises the checker).
        let map = paper_map(64);
        let mut seen: Vec<u64> = map.table();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10);
        let code = MOutOfN::new(3, 5).unwrap();
        let all: std::collections::HashSet<u64> = code.iter().collect();
        for w in seen {
            assert!(all.contains(&w));
        }
    }

    #[test]
    fn no_completion_fix_when_space_too_small() {
        // 8 lines, a = 9: every line already has a unique codeword.
        let map = paper_map(8);
        for a1 in 0..8u64 {
            for a2 in 0..a1 {
                assert!(!map.same_codeword(a1, a2));
            }
        }
    }

    #[test]
    fn input_parity_mapping() {
        let map = CodewordMap::input_parity(16);
        assert_eq!(map.width(), 2);
        assert_eq!(map.codeword_for(0), 0b10); // even parity
        assert_eq!(map.codeword_for(1), 0b01); // odd
        assert_eq!(map.codeword_for(3), 0b10); // two ones → even
        assert_eq!(map.codeword_for(7), 0b01);
        assert_eq!(map.distinct_codewords(), 2);
        assert!(map.is_codeword(0b01));
        assert!(map.is_codeword(0b10));
        assert!(!map.is_codeword(0b00));
        assert!(!map.is_codeword(0b11));
    }

    #[test]
    fn berger_mapping_is_injective() {
        let map = CodewordMap::berger(5, 32).unwrap();
        let table = map.table();
        let mut sorted = table.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32);
        for w in table {
            assert!(map.is_codeword(w));
        }
    }

    #[test]
    fn identity_mofn_zero_latency() {
        let map = CodewordMap::identity_mofn(256).unwrap();
        // Needs C(q,r) >= 256 → 5-out-of-10 (252) too small, C(6,11) = 462.
        assert_eq!(map.width(), 11);
        let table = map.table();
        let mut sorted = table.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256, "identity mapping must be injective");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn address_out_of_range_panics() {
        paper_map(8).codeword_for(8);
    }

    #[test]
    fn with_remap_overrides_base_strategy_and_completion_fix() {
        // Re-map address 3 onto rank 7; everything else keeps mod-9 + fix.
        let map = paper_map(64).with_remap(3, 7).unwrap();
        assert_eq!(map.rank_for(3), 7);
        assert_eq!(map.rank_for(9), 9, "completion fix survives");
        assert_eq!(map.rank_for(12), 3, "other lines keep the residue");
        assert!(map.is_codeword(map.codeword_for(3)));
        // Later entries for the same address win.
        let map = map.with_remap(3, 0).unwrap();
        assert_eq!(map.rank_for(3), 0);
        assert_eq!(map.remaps().len(), 3, "fix + both explicit entries");
    }

    #[test]
    fn with_remap_validates_address_and_rank() {
        assert!(matches!(
            paper_map(8).with_remap(8, 0),
            Err(CodeError::RankOutOfRange { .. })
        ));
        assert!(matches!(
            paper_map(8).with_remap(0, 10), // C(3,5) = 10 ranks: 0..=9
            Err(CodeError::RankOutOfRange { .. })
        ));
        let berger = CodewordMap::berger(4, 16).unwrap();
        assert!(
            berger.with_remap(0, 0).is_err(),
            "Berger identity maps have no rank indirection"
        );
    }

    #[test]
    fn remap_can_construct_colliding_lines() {
        // The degenerate case the sweep-bound tests need: two lines forced
        // onto one codeword, making their SA1 pairing undetectable.
        let map = paper_map(8).with_remap(1, 0).unwrap();
        assert!(map.same_codeword(0, 1));
        assert_eq!(map.codeword_for(0), map.codeword_for(1));
    }

    #[test]
    fn spare_rank_finds_the_first_unused_codeword() {
        // 8 lines under a = 9: ranks 0..=7 used, 8 is the first spare.
        assert_eq!(paper_map(8).spare_rank(), Some(8));
        // 64 lines with the completion fix: all 10 ranks used, no spare.
        assert_eq!(paper_map(64).spare_rank(), None);
        // Identity map on a code with head-room keeps spares available.
        let id = CodewordMap::identity_mofn(256).unwrap();
        assert_eq!(id.spare_rank(), Some(256));
        assert_eq!(CodewordMap::berger(4, 16).unwrap().spare_rank(), None);
    }

    #[test]
    fn distinct_codewords_is_exact_under_remaps() {
        let base = paper_map(64);
        assert_eq!(base.distinct_codewords(), 10);
        // Aliasing remap folds a rank away only if it removes the last use.
        let aliased = paper_map(8).with_remap(1, 0).unwrap();
        assert_eq!(aliased.distinct_codewords(), 7);
        // Spare-rank remap grows the set.
        let grown = paper_map(8).with_remap(1, 8).unwrap();
        assert_eq!(grown.distinct_codewords(), 8);
    }

    proptest! {
        #[test]
        fn prop_every_rom_word_is_codeword(lines_log in 3u32..=10, a_idx in 0usize..4) {
            let choices = [(2u32,3u32,3u64), (2,4,5), (3,5,9), (4,7,35)];
            let (q, r, a) = choices[a_idx];
            let lines = 1u64 << lines_log;
            let map = CodewordMap::mod_a(MOutOfN::new(q, r).unwrap(), a, lines).unwrap();
            for addr in 0..lines {
                prop_assert!(map.is_codeword(map.codeword_for(addr)));
            }
        }

        #[test]
        fn prop_and_of_different_ranks_noncode(addr1 in 0u64..512, addr2 in 0u64..512) {
            let map = paper_map(512);
            if !map.same_codeword(addr1, addr2) {
                let and = map.codeword_for(addr1) & map.codeword_for(addr2);
                prop_assert!(!map.is_codeword(and));
            } else {
                prop_assert_eq!(map.codeword_for(addr1), map.codeword_for(addr2));
            }
        }

        #[test]
        fn prop_parity_map_detects_odd_distance(addr1 in 0u64..1024, addr2 in 0u64..1024) {
            let map = CodewordMap::input_parity(1024);
            let distance = (addr1 ^ addr2).count_ones();
            if distance % 2 == 1 {
                prop_assert!(!map.same_codeword(addr1, addr2));
            } else {
                prop_assert!(map.same_codeword(addr1, addr2));
            }
        }
    }
}
