//! Self-checking RAM assembly and cycle-level fault-injection simulator.
//!
//! This crate realises the full design of the paper's Figure 3 as an
//! executable model:
//!
//! * a cell array of `2^p` rows × `(m+1)·2^s` physical columns (the `+1`
//!   column group stores the data-path parity bit),
//! * behavioural row and column decoders whose fault behaviour is exactly
//!   the gate-level model of `scm-decoder` (the equivalence is proven by
//!   that crate's exhaustive tests and revisited by integration tests here),
//! * the two NOR-matrix ROMs of `scm-rom` observing the decoder lines,
//! * code membership checks standing in for the `q`-out-of-`r` checkers and
//!   the data-path parity checker,
//! * single-fault injection at every site class: memory cells, decoder
//!   lines, ROM bits and columns, data-register bits,
//! * a cycle engine that runs an injected design against a fault-free twin
//!   on a common workload and measures **detection latency** — the cycle of
//!   first error vs the cycle of first detection,
//! * Monte-Carlo campaigns ([`campaign`]) producing empirical `Pndc`
//!   estimates to validate the analytical engine and the paper's bounds,
//!   executed by a deterministic parallel [`engine`] over pluggable
//!   behavioural/gate-level [`backend`]s,
//! * a self-checking **ROM** variant ([`rom_memory`]) realising the paper's
//!   closing claim that the trade-off carries to other memory types.
//!
//! # Example
//!
//! ```
//! use scm_memory::design::{SelfCheckingRam, RamConfig};
//! use scm_memory::fault::FaultSite;
//! use scm_area::RamOrganization;
//! use scm_codes::{MOutOfN, selection::{select_code, LatencyBudget, SelectionPolicy}};
//!
//! // A 1K×16 RAM protected for c = 10 cycles at Pndc ≤ 1e-9.
//! let plan = select_code(
//!     LatencyBudget::new(10, 1e-9)?,
//!     SelectionPolicy::WorstBlockExact,
//! )?;
//! let config = RamConfig::from_plan(RamOrganization::with_mux8(1024, 16), &plan)?;
//! let mut ram = SelfCheckingRam::new(config);
//! ram.write(0x2A, 0xBEEF);
//! let out = ram.read(0x2A);
//! assert_eq!(out.data, 0xBEEF);
//! assert!(!out.verdict.any_error());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_check;
pub mod arena;
pub mod array;
pub mod backend;
pub mod campaign;
pub mod decoder_unit;
pub mod design;
pub mod engine;
pub mod fault;
pub mod report;
pub mod rom_memory;
pub mod scrub;
pub mod sim;
pub mod sliced;
pub mod workload;

pub use arena::{OpStreamArena, ReplayOps, ARENA_OP_BUDGET};
pub use backend::{BehavioralBackend, CycleObservation, FaultSimBackend, GateLevelBackend};
pub use campaign::{run_campaign, CampaignConfig, CampaignResult, FaultResult};
pub use design::{RamConfig, ReadOutcome, SelfCheckingRam, Verdict};
pub use engine::{CampaignEngine, LaneOccupancy, DEFAULT_SERIAL_THRESHOLD};
pub use fault::FaultSite;
pub use sim::{measure_detection, measure_detection_on, DetectionOutcome};
pub use sliced::{
    measure_detection_sliced, slab_words, LaneSet, SlicedBackend, SlicedObservation, SlicedPrefill,
    MAX_SLAB_LANES, MAX_SLAB_WORDS,
};
pub use workload::{
    builtin_models, model_by_name, AddressPattern, Op, OpSource, OpStream, Workload, WorkloadModel,
    WorkloadSpec, MODEL_NAMES,
};
