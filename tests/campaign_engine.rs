//! Workspace-level contract tests for the parallel campaign engine:
//!
//! 1. **Thread-count determinism** — the per-fault escape statistics of a
//!    campaign are bit-identical at 1 thread and at N threads for a fixed
//!    seed, for both the wide-universe (fault-major blocks) and
//!    narrow-universe (trial-split blocks) scheduling regimes.
//! 2. **Backend equivalence** — behavioural and gate-level backends agree
//!    on decoder-checker verdicts over a small decoder, driven through the
//!    one `FaultSimBackend` interface by the same engine.
//! 3. **Wrapper compatibility** — `run_campaign` is exactly the engine at
//!    ambient width.

use scm_area::RamOrganization;
use scm_codes::{CodewordMap, MOutOfN};
use scm_memory::backend::{BehavioralBackend, FaultSimBackend, GateLevelBackend};
use scm_memory::campaign::{decoder_fault_universe, run_campaign, CampaignConfig, CampaignResult};
use scm_memory::design::RamConfig;
use scm_memory::engine::CampaignEngine;
use scm_memory::fault::FaultSite;
use scm_memory::workload::Op;

fn small_config() -> RamConfig {
    let org = RamOrganization::new(64, 8, 4);
    let code = MOutOfN::new(3, 5).unwrap();
    RamConfig::new(
        org,
        CodewordMap::mod_a(code, 9, 16).unwrap(),
        CodewordMap::mod_a(code, 9, 4).unwrap(),
    )
}

fn decoder_faults() -> Vec<FaultSite> {
    decoder_fault_universe(4)
        .into_iter()
        .map(FaultSite::RowDecoder)
        .chain(
            decoder_fault_universe(2)
                .into_iter()
                .map(FaultSite::ColDecoder),
        )
        .collect()
}

#[test]
fn escape_frequencies_identical_at_one_and_many_threads() {
    let config = small_config();
    let faults = decoder_faults();
    let campaign = CampaignConfig {
        cycles: 15,
        trials: 9,
        seed: 0xD5EED,
        write_fraction: 0.1,
    };
    let reference = CampaignEngine::new(campaign)
        .threads(1)
        .run(&config, &faults);
    for threads in [2usize, 3, 8] {
        let parallel = CampaignEngine::new(campaign)
            .threads(threads)
            .run(&config, &faults);
        assert_eq!(
            reference.determinism_profile(),
            parallel.determinism_profile(),
            "{threads} threads"
        );
    }
}

#[test]
fn trial_split_regime_is_deterministic_too() {
    // Two faults, many trials: blocks split within each fault's trial
    // range, the regime where nondeterminism would hide if seeds depended
    // on scheduling.
    let config = small_config();
    let faults = &decoder_faults()[..2];
    let campaign = CampaignConfig {
        cycles: 10,
        trials: 64,
        seed: 3,
        write_fraction: 0.2,
    };
    let reference = CampaignEngine::new(campaign)
        .threads(1)
        .run(&config, faults);
    for threads in [2usize, 5, 16] {
        let parallel = CampaignEngine::new(campaign)
            .threads(threads)
            .run(&config, faults);
        assert_eq!(
            reference.determinism_profile(),
            parallel.determinism_profile(),
            "{threads} threads"
        );
    }
}

#[test]
fn run_campaign_wrapper_matches_engine() {
    let config = small_config();
    let faults = decoder_faults();
    let campaign = CampaignConfig {
        cycles: 10,
        trials: 6,
        seed: 11,
        write_fraction: 0.1,
    };
    let wrapped = run_campaign(&config, &faults, campaign);
    let direct = CampaignEngine::new(campaign)
        .threads(1)
        .run(&config, &faults);
    assert_eq!(wrapped.determinism_profile(), direct.determinism_profile());
}

#[test]
fn behavioral_and_gate_backends_agree_on_decoder_verdicts() {
    // Every decoder fault, every address, one interface: the gate-level
    // netlist (stuck-at on the exact generated signal) and the behavioural
    // model must emit the same row/column checker verdicts.
    let config = small_config();
    let mut behavioral = BehavioralBackend::prefilled(&config, 0x5EED);
    let mut gate = GateLevelBackend::try_new(&config).expect("3-out-of-5 is constant weight");
    for site in decoder_faults() {
        assert!(gate.supports(&site.into()), "{site:?}");
        behavioral.reset_site(Some(site));
        gate.reset_site(Some(site));
        for addr in 0..64u64 {
            let b = behavioral.step(Op::Read(addr));
            let g = gate.step(Op::Read(addr));
            assert_eq!(
                b.verdict.row_code_error, g.verdict.row_code_error,
                "row verdict: {site:?} addr {addr}"
            );
            assert_eq!(
                b.verdict.col_code_error, g.verdict.col_code_error,
                "col verdict: {site:?} addr {addr}"
            );
        }
    }
}

#[test]
fn engine_runs_identically_on_both_backends_for_pure_reads() {
    // With a read-only workload the data path never diverges silently on
    // SA0 faults (reads of an unselected row return the precharge value and
    // are flagged the same cycle), so first-detection statistics derived
    // purely from decoder-checker verdicts must agree between backends.
    // Restrict to faults where the behavioural model's extra observability
    // (parity on wired-OR data) cannot fire before the code checkers: SA0.
    let config = small_config();
    let faults: Vec<FaultSite> = decoder_fault_universe(4)
        .into_iter()
        .filter(|f| !f.stuck_one)
        .map(FaultSite::RowDecoder)
        .collect();
    let campaign = CampaignConfig {
        cycles: 25,
        trials: 5,
        seed: 21,
        write_fraction: 0.0,
    };
    let engine = CampaignEngine::new(campaign).threads(2);
    let behavioral = engine.run_on(&BehavioralBackend::prefilled(&config, 1), &faults);
    let gate = engine.run_on(&GateLevelBackend::try_new(&config).unwrap(), &faults);
    let detections = |r: &CampaignResult| -> Vec<(u32, u64)> {
        r.per_fault
            .iter()
            .map(|f| (f.detected, f.detection_cycle_sum))
            .collect()
    };
    assert_eq!(detections(&behavioral), detections(&gate));
}

#[test]
fn gate_backend_batching_agrees_with_engine_serial_path() {
    // step_many (64-lane parallel sweeps) vs step (scalar): same verdicts
    // over a mixed op stream.
    let config = small_config();
    let mut gate = GateLevelBackend::try_new(&config).unwrap();
    let ops: Vec<Op> = (0..200u64).map(|i| Op::Read(i % 64)).collect();
    for site in decoder_faults() {
        gate.reset_site(Some(site));
        let batched = gate.step_many(&ops);
        let serial: Vec<_> = ops.iter().map(|&op| gate.step(op)).collect();
        assert_eq!(batched, serial, "{site:?}");
    }
}
