//! Byte-compatibility fixtures for the `scm` CLI.
//!
//! The fixtures were recorded from the pre-refactor standalone binaries
//! (`table1`, `table2`, `pareto`); the unified CLI must reproduce their
//! stdout **byte for byte**, so EXPERIMENTS.md's recorded outputs never
//! drift when the machinery underneath is refactored.

use scm_bench::cli;

fn run(args: &[&str]) -> String {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    cli::run(&owned).expect("fixture commands succeed")
}

#[test]
fn table1_stdout_is_byte_identical_to_pre_refactor_output() {
    assert_eq!(run(&["table1"]), include_str!("fixtures/table1.stdout"));
}

#[test]
fn table2_stdout_is_byte_identical_to_pre_refactor_output() {
    assert_eq!(run(&["table2"]), include_str!("fixtures/table2.stdout"));
}

#[test]
fn pareto_stdout_is_byte_identical_to_pre_refactor_output() {
    assert_eq!(run(&["pareto"]), include_str!("fixtures/pareto.stdout"));
}
