//! Extension experiment: how does the *workload model* change empirical
//! detection latency? The paper's analysis assumes uniformly random
//! addresses; real workloads are sequential scans, bursts, skewed hot
//! spots, or lopsided read/write mixes. This example measures the same
//! injected decoder fault under every built-in [`WorkloadModel`].
//!
//! Run: `cargo run --release --example workload_sensitivity`

use scm_core::prelude::*;
use scm_memory::decoder_unit::DecoderFault;
use scm_memory::sim::measure_detection_on;
use scm_memory::workload::{builtin_models, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = SelfCheckingRamBuilder::new(1024, 16)
        .mux_factor(8)
        .latency_budget(10, 1e-9)?
        .build()?;

    // The injected fault: SA1 on the row line of value 5 in the last-level
    // 7-bit block — the paper's analysis gives per-cycle escape ≈ 15/128.
    let fault = FaultSite::RowDecoder(DecoderFault {
        bits: 7,
        offset: 0,
        value: 5,
        stuck_one: true,
    });
    let spec = WorkloadSpec {
        words: 1024,
        word_bits: 16,
        write_fraction: 0.1,
    };

    println!("SA1 decoder fault, 40 trials each, up to 10k cycles:");
    println!();
    println!(
        "{:<22} | {:>9} | {:>10} | {:>12}",
        "model", "detected", "mean lat.", "worst lat."
    );
    println!("{}", "-".repeat(62));
    for model in builtin_models() {
        let mut backend = BehavioralBackend::prefilled(design.config(), 0x1234);
        let mut detected = 0u32;
        let mut sum = 0u64;
        let mut worst = 0u64;
        let trials = 40u64;
        for seed in 0..trials {
            backend.reset_site(Some(fault));
            let mut stream = model.stream(spec, seed);
            let out = measure_detection_on(&mut backend, stream.as_mut(), 10_000);
            if let Some(d) = out.first_detection {
                detected += 1;
                sum += d;
                worst = worst.max(d);
            }
        }
        let mean = if detected > 0 {
            sum as f64 / detected as f64
        } else {
            f64::NAN
        };
        println!(
            "{:<22} | {detected:>6}/{trials} | {mean:>10.1} | {worst:>12}",
            model.name()
        );
    }
    println!();
    println!("reading: uniform addressing detects almost immediately (most random rows");
    println!("differ from the stuck line's codeword). Skewed and scanning models change");
    println!("how often the colliding row pair is exercised — the paper's uniform-");
    println!("address assumption is the right design-time model but not a guarantee");
    println!("under adversarial locality; `scm campaign --workload <model>` runs the");
    println!("full fault universe under any of these.");
    Ok(())
}
