//! Trace sinks: where engines put events.
//!
//! Engines are generic over [`TraceSink`] so the disabled path
//! monomorphises to nothing: [`NullSink::enabled`] is a constant
//! `false`, every emission site is guarded by it, and the optimiser
//! removes both the guard and the event construction. The enabled path
//! uses [`VecSink`], one per `(bank, fault, trial)` work unit, merged
//! in canonical grid order — which is what keeps the trace byte-stable
//! under any thread count.

use crate::event::Event;

/// A destination for trace events.
///
/// Implementations must be cheap to query: engines call
/// [`TraceSink::enabled`] before building an event so the disabled
/// path never allocates or formats.
pub trait TraceSink {
    /// Will [`TraceSink::record`] keep events? Emission sites skip
    /// event construction entirely when this is `false`.
    fn enabled(&self) -> bool;

    /// Accept one event.
    fn record(&mut self, event: Event);
}

/// The disabled sink: a zero-sized type whose methods compile away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// An in-memory sink that keeps events in arrival order.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Recorded events, in the order they were recorded.
    pub events: Vec<Event>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Consume the sink, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

impl TraceSink for &mut VecSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn null_sink_is_disabled_and_vec_sink_keeps_order() {
        assert!(!NullSink.enabled());
        let mut sink = VecSink::new();
        assert!(sink.enabled());
        sink.record(Event::cell(3, 0, 0, 0, EventKind::Activate));
        sink.record(Event::cell(1, 0, 0, 1, EventKind::Escape));
        let events = sink.into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t, 3);
        assert_eq!(events[1].t, 1);
    }
}
