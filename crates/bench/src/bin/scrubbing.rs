//! Extension experiment: **deterministic scrubbing bounds** — the hard
//! (non-probabilistic) detection-latency guarantee a sequential background
//! sweep adds on top of the paper's `Pndc`.
//!
//! Run: `cargo run -p scm-bench --bin scrubbing`

use scm_codes::selection::{select_code, LatencyBudget, SelectionPolicy};
use scm_memory::scrub::sweep_bound;

fn main() {
    let n = 7u32; // the 1K×16 row decoder
    println!("deterministic sweep bounds, p = {n} row decoder (128 lines)");
    println!();
    println!(
        "{:<12} | {:>4} | {:>9} | {:>9} | {:>12} | {:>7}",
        "code", "a", "SA0 bound", "SA1 bound", "undetectable", "faults"
    );
    println!("{}", "-".repeat(68));
    for pndc in [1e-2, 1e-5, 1e-9, 1e-15] {
        let plan = select_code(
            LatencyBudget::new(10, pndc).unwrap(),
            SelectionPolicy::InverseA,
        )
        .unwrap();
        let map = plan.mapping(1 << n).unwrap();
        let bound = sweep_bound(n, &map);
        println!(
            "{:<12} | {:>4} | {:>9} | {:>9} | {:>12} | {:>7}",
            plan.code_name(),
            plan.a(),
            bound.worst_sa0,
            bound.worst_sa1,
            bound.undetectable,
            bound.total
        );
    }
    println!();
    println!("reading: with one scrub read per slot, every stuck-at-0 is caught within");
    println!("one full sweep (2^p slots: only the stuck line's own address exposes it),");
    println!("and every detectable stuck-at-1 within half a sweep + 1 (the sweep's dead");
    println!("zone inside the faulty top-bit half). Undetectable = codeword-colliding");
    println!("line pairs — the residue the paper's Pndc budget prices; note how it");
    println!("shrinks as the code strengthens, vanishing for a >= #lines.");
}
