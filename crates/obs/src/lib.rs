//! Deterministic observability for the self-checking-memory engines.
//!
//! Three strictly separated layers (DESIGN.md §6):
//!
//! * [`event`]/[`sink`] — **structured events on the simulated clock**
//!   (fault activation, first detection, scrub sweeps, SEU strikes,
//!   BIST sessions, spare commits, checkpoint writes/restores,
//!   guided-search rung prunes). Events are pure in
//!   `(seed, bank, fault, trial)`: a trace is bit-identical at any
//!   thread count, any lane width and under either engine — the same
//!   contract the result counters already honour. Sinks are
//!   zero-cost when disabled: the [`sink::NullSink`] monomorphises every
//!   emission site to a no-op.
//! * [`metrics`] — an **exact-integer registry**: named `u64` counters
//!   and exact integer-bucket histograms whose merge is associative and
//!   commutative, so partial results fold in any grouping.
//! * [`profile`] — a **wall-clock phase profiler**, explicitly
//!   nondeterministic, whose every output line carries the `profile:`
//!   prefix so fixtures and CI diffs filter it exactly like the
//!   existing `memo:` line.
//!
//! [`export`] renders traces as versioned text, re-parses them, and
//! exports human summaries, hand-rolled JSON and Chrome trace-event
//! JSON (loadable in `chrome://tracing` / Perfetto).

pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use event::{sort_chronological, Event, EventKind, Verdict};
pub use export::{chrome_trace, parse_trace, trace_text, Trace};
pub use metrics::{Histogram, Metrics};
pub use profile::Profiler;
pub use sink::{NullSink, TraceSink, VecSink};
