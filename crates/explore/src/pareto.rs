//! Pareto-frontier extraction over evaluated design points.
//!
//! The paper's title trade-off made first-class: the objectives are
//! **minimise area** (decoder-checking overhead %), **minimise latency**
//! (the tolerated `c`), and **minimise escape** (the achieved `Pndc`). A
//! point is on the frontier when no other evaluated point is at least as
//! good on all three and strictly better on one.
//!
//! The sharded-system view has its own frontier
//! ([`system_pareto_front`]): **minimise area**, **minimise system
//! detection latency** (mean across banks, global clock) and **minimise
//! expected lost work** — the joint objective Aupy et al. show cannot be
//! optimised one memory at a time.
//!
//! The repair view closes the loop ([`repair_pareto_front`]): **minimise
//! area including spares and the BIST controller**, **minimise mean time
//! to repair** (horizon-censored) and **minimise residual escape** (the
//! fraction of trials never even detected) — spares and diagnosis
//! sessions re-open the paper's area-versus-latency trade-off on the
//! repair axis.

use crate::evaluate::Evaluation;
use crate::space::FaultMix;

/// Objective vector of an evaluation.
fn objectives(e: &Evaluation) -> [f64; 3] {
    [e.area_percent(), e.point.cycles as f64, e.achieved_pndc]
}

/// System-view objective vector; `None` when the evaluation carries no
/// system figures.
fn system_objectives(e: &Evaluation) -> Option<[f64; 3]> {
    e.system
        .map(|s| [e.area_percent(), s.mean_latency, s.expected_lost_work])
}

/// Repair-view objective vector; `None` when the evaluation carries no
/// repair figures.
fn repair_objectives(e: &Evaluation) -> Option<[f64; 3]> {
    e.repair.map(|r| {
        [
            r.area_with_repair_percent,
            r.mean_time_to_repair,
            r.escape(),
        ]
    })
}

/// Does `a` dominate `b` (no worse everywhere, better somewhere)?
pub fn dominates(a: &Evaluation, b: &Evaluation) -> bool {
    dominates_by(objectives(a), objectives(b))
}

pub(crate) fn dominates_by(oa: [f64; 3], ob: [f64; 3]) -> bool {
    let no_worse = oa.iter().zip(&ob).all(|(x, y)| x <= y);
    let better = oa.iter().zip(&ob).any(|(x, y)| x < y);
    no_worse && better
}

/// Shared frontier extraction over an explicit objective function.
pub(crate) fn front_by(
    evaluations: &[Evaluation],
    objectives: impl Fn(&Evaluation) -> [f64; 3],
) -> Vec<Evaluation> {
    let mut front: Vec<Evaluation> = Vec::new();
    for candidate in evaluations {
        let oc = objectives(candidate);
        if front.iter().any(|kept| dominates_by(objectives(kept), oc)) {
            continue;
        }
        if front.iter().any(|kept| objectives(kept) == oc) {
            continue; // objective-identical twin already kept
        }
        front.retain(|kept| !dominates_by(oc, objectives(kept)));
        front.push(candidate.clone());
    }
    front.sort_by(|a, b| {
        objectives(a)
            .iter()
            .zip(objectives(b))
            .map(|(x, y)| x.total_cmp(&y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front
}

/// Non-dominated subset of `evaluations`, sorted by ascending area then
/// latency then escape — a deterministic presentation order.
///
/// Duplicate objective vectors keep their first (input-order)
/// representative, so the frontier itself is deterministic too.
pub fn pareto_front(evaluations: &[Evaluation]) -> Vec<Evaluation> {
    front_by(evaluations, objectives)
}

/// Per-fault-mix frontiers over (area, latency, escape): the evaluations
/// are grouped by their point's [`FaultMix`] and a frontier extracted
/// inside each group, so a scheme that wins against permanents can be
/// compared with — but never dominates — one graded against transients.
/// The escape objective is the **empirical** mean escape when the
/// evaluation was adjudicated (the only meaningful figure for stochastic
/// mixes) and the analytic achieved `Pndc` otherwise. Groups appear in
/// [`FaultMix::ALL`] order; mixes with no evaluations are omitted.
pub fn mix_pareto_fronts(evaluations: &[Evaluation]) -> Vec<(FaultMix, Vec<Evaluation>)> {
    FaultMix::ALL
        .into_iter()
        .filter_map(|mix| {
            let group: Vec<Evaluation> = evaluations
                .iter()
                .filter(|e| e.point.fault_mix == mix)
                .cloned()
                .collect();
            if group.is_empty() {
                return None;
            }
            let front = front_by(&group, |e| {
                let escape = e
                    .empirical
                    .map(|emp| emp.mean_escape)
                    .unwrap_or(e.achieved_pndc);
                [e.area_percent(), e.point.cycles as f64, escape]
            });
            Some((mix, front))
        })
        .collect()
}

/// Non-dominated subset under the **system** objectives — (area, mean
/// system detection latency, expected lost work) — over the evaluations
/// that carry system figures. Evaluations without a system stage are
/// ignored; the result is empty when none have one.
pub fn system_pareto_front(evaluations: &[Evaluation]) -> Vec<Evaluation> {
    let with_figures: Vec<Evaluation> = evaluations
        .iter()
        .filter(|e| e.system.is_some())
        .cloned()
        .collect();
    front_by(&with_figures, |e| {
        system_objectives(e).expect("filtered to evaluations with system figures")
    })
}

/// Non-dominated subset under the **repair** objectives — (area incl.
/// spares and BIST, mean time to repair, residual escape) — over the
/// evaluations that carry repair figures. Evaluations without a repair
/// stage are ignored; the result is empty when none have one.
pub fn repair_pareto_front(evaluations: &[Evaluation]) -> Vec<Evaluation> {
    let with_figures: Vec<Evaluation> = evaluations
        .iter()
        .filter(|e| e.repair.is_some())
        .cloned()
        .collect();
    front_by(&with_figures, |e| {
        repair_objectives(e).expect("filtered to evaluations with repair figures")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Evaluator;
    use crate::space::{ExplorationSpace, ScrubPolicy};
    use scm_area::RamOrganization;
    use scm_codes::selection::SelectionPolicy;

    fn evaluations() -> Vec<Evaluation> {
        let ev = Evaluator::default();
        let space = ExplorationSpace {
            geometries: vec![RamOrganization::with_mux8(2048, 16)],
            cycles: vec![2, 5, 10, 20, 40],
            pndcs: vec![1e-2, 1e-9, 1e-20],
            policies: vec![SelectionPolicy::WorstBlockExact],
            scrubs: vec![ScrubPolicy::Off],
            workloads: vec!["uniform".to_owned()],
            banks: vec![1],
            checkpoints: vec![0],
            repairs: vec![crate::space::RepairPolicy::OFF],
            fault_mixes: vec![FaultMix::Permanent],
        };
        ev.evaluate_space(&space)
            .into_iter()
            .filter_map(Result::ok)
            .collect()
    }

    #[test]
    fn frontier_is_mutually_non_dominated_and_sorted() {
        let evals = evaluations();
        let front = pareto_front(&evals);
        assert!(!front.is_empty() && front.len() < evals.len());
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(
                        !dominates(a, b),
                        "{} dominates {}",
                        a.point.label(),
                        b.point.label()
                    );
                }
            }
        }
        for w in front.windows(2) {
            assert!(w[0].area_percent() <= w[1].area_percent());
        }
    }

    #[test]
    fn every_dropped_point_is_dominated_or_duplicated() {
        let evals = evaluations();
        let front = pareto_front(&evals);
        for e in &evals {
            let on_front = front.iter().any(|f| objectives(f) == objectives(e));
            let dominated = front.iter().any(|f| dominates(f, e));
            assert!(
                on_front || dominated,
                "{} neither kept nor dominated",
                e.point.label()
            );
        }
    }

    #[test]
    fn repair_front_covers_exactly_the_repair_enabled_points() {
        use crate::evaluate::RepairAdjudication;
        use crate::space::RepairPolicy;
        let ev = Evaluator::default().repair_stage(RepairAdjudication {
            horizon: 1200,
            trials: 1,
            cells_per_bank: 2,
            ..RepairAdjudication::default()
        });
        let space = ExplorationSpace {
            geometries: vec![RamOrganization::new(64, 8, 4)],
            cycles: vec![10],
            pndcs: vec![1e-9],
            policies: vec![SelectionPolicy::WorstBlockExact],
            scrubs: vec![ScrubPolicy::Off],
            workloads: vec!["uniform".to_owned()],
            banks: vec![1],
            checkpoints: vec![0],
            repairs: vec![
                RepairPolicy::OFF,
                RepairPolicy {
                    spare_rows: 1,
                    diag_period: 400,
                },
                RepairPolicy {
                    spare_rows: 2,
                    diag_period: 400,
                },
            ],
            fault_mixes: vec![FaultMix::Permanent],
        };
        let evals: Vec<Evaluation> = ev
            .evaluate_space(&space)
            .into_iter()
            .filter_map(Result::ok)
            .collect();
        assert_eq!(evals.len(), 3);
        let front = repair_pareto_front(&evals);
        assert!(!front.is_empty() && front.len() <= 2, "{}", front.len());
        assert!(front.iter().all(|e| e.repair.is_some()));
        // More spares cost more area; the front keeps the cheaper policy
        // unless the extra spare buys repair latency or escape.
        for w in front.windows(2) {
            let a = w[0].repair.unwrap();
            let b = w[1].repair.unwrap();
            assert!(a.area_with_repair_percent <= b.area_with_repair_percent);
        }
    }

    #[test]
    fn mix_fronts_group_by_fault_mix_in_presentation_order() {
        use crate::evaluate::Adjudication;
        use scm_memory::campaign::CampaignConfig;
        let ev = Evaluator::default().adjudicate(Adjudication {
            campaign: CampaignConfig {
                cycles: 10,
                trials: 3,
                seed: 0xF00,
                write_fraction: 0.1,
            },
            max_faults: 8,
            scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
            sliced: false,
            lane_width: 512,
        });
        let space = ExplorationSpace {
            geometries: vec![RamOrganization::new(256, 8, 4)],
            cycles: vec![5, 10],
            pndcs: vec![1e-2, 1e-9],
            policies: vec![SelectionPolicy::WorstBlockExact],
            scrubs: vec![ScrubPolicy::Off],
            workloads: vec!["uniform".to_owned()],
            banks: vec![1],
            checkpoints: vec![0],
            repairs: vec![crate::space::RepairPolicy::OFF],
            fault_mixes: vec![FaultMix::Permanent, FaultMix::Transient, FaultMix::Mix],
        };
        let evals: Vec<Evaluation> = ev
            .evaluate_space(&space)
            .into_iter()
            .filter_map(Result::ok)
            .collect();
        assert_eq!(evals.len(), 12);
        let fronts = mix_pareto_fronts(&evals);
        let mixes: Vec<FaultMix> = fronts.iter().map(|(m, _)| *m).collect();
        assert_eq!(
            mixes,
            vec![FaultMix::Permanent, FaultMix::Transient, FaultMix::Mix],
            "ALL order, intermittent omitted (no evaluations)"
        );
        for (mix, front) in &fronts {
            assert!(!front.is_empty(), "{mix:?}");
            assert!(front.iter().all(|e| e.point.fault_mix == *mix));
            // Non-permanent points carry the mix in their label.
            if *mix != FaultMix::Permanent {
                assert!(front[0]
                    .point
                    .label()
                    .contains(&format!("fm={}", mix.name())));
            }
        }
    }

    #[test]
    fn tighter_latency_at_fixed_escape_never_costs_less() {
        // The paper's monotonicity, visible on the frontier: walking the
        // front from cheap to expensive, achieved escape never improves
        // for free.
        let front = pareto_front(&evaluations());
        for w in front.windows(2) {
            let cheaper = &w[0];
            let costlier = &w[1];
            assert!(
                costlier.point.cycles as f64 <= cheaper.point.cycles as f64
                    || costlier.achieved_pndc <= cheaper.achieved_pndc,
                "paying more area must buy latency or escape"
            );
        }
    }
}
