//! Rendering fleet telemetry: the human table and the machine JSON.
//!
//! Both renderers consume only the settled integer totals of a
//! [`FleetOutcome`] (derived floats are computed here, once), so two
//! bit-identical outcomes — whatever their thread count or
//! checkpoint/resume history — render byte-identical text. The `scm
//! fleet` fixture pins exactly that.

use crate::driver::FleetOutcome;
use crate::telemetry::CohortReport;
use std::fmt::Write as _;

/// Per-cohort derived reports, spec cohort order.
pub fn cohort_reports(outcome: &FleetOutcome) -> Vec<CohortReport> {
    outcome
        .spec
        .cohorts
        .iter()
        .zip(&outcome.cohorts)
        .map(|(cohort, &telemetry)| CohortReport::derive(&outcome.spec, cohort, telemetry))
        .collect()
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn fit(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else {
        format!("{x:.2e}")
    }
}

/// Render an unobserved rate (`None` denominator) as `n/a`.
fn opt(x: Option<f64>, render: impl Fn(f64) -> String) -> String {
    x.map(render).unwrap_or_else(|| "n/a".to_owned())
}

/// The human-readable fleet report.
pub fn fleet_report(outcome: &FleetOutcome) -> String {
    let reports = cohort_reports(outcome);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "self-checking memory fleet campaign — {} devices, {} cohorts",
        outcome.devices,
        reports.len()
    );
    let _ = writeln!(
        out,
        "engine = {}   seed = {:#x}   clock = {} cycles/hour",
        if outcome.sliced { "sliced" } else { "scalar" },
        outcome.seed,
        outcome.spec.cycles_per_hour
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {:>11} {:>6}",
        "cohort",
        "devices",
        "strikes",
        "det",
        "escapes",
        "SDC FIT",
        "mean-det",
        "lost/strike",
        "hard"
    );
    for r in &reports {
        let t = &r.telemetry;
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9} {:>11} {:>6}",
            r.name,
            t.devices,
            t.strikes,
            opt(r.detect_fraction, pct),
            t.escapes,
            opt(r.sdc_fit, fit),
            r.mean_detection_cycle
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".to_owned()),
            opt(r.mean_lost_work, |m| format!("{m:.1}")),
            t.hard_devices,
        );
    }
    out.push('\n');
    out.push_str("SLO compliance\n");
    for (r, cohort) in reports.iter().zip(&outcome.spec.cohorts) {
        let _ = writeln!(
            out,
            "  {:<12} SDC {} FIT vs max {} -> {} | detect {} vs min {} -> {}  => {}",
            r.name,
            opt(r.sdc_fit, fit),
            fit(cohort.slo_max_sdc_fit as f64),
            if r.sdc_slo_pass { "PASS" } else { "FAIL" },
            opt(r.detect_fraction, pct),
            pct(cohort.slo_min_detect_ppm as f64 / 1e6),
            if r.detect_slo_pass { "PASS" } else { "FAIL" },
            if r.slo_pass() { "PASS" } else { "FAIL" },
        );
    }
    out.push('\n');
    out.push_str("spare-exhaustion forecast\n");
    for (r, cohort) in reports.iter().zip(&outcome.spec.cohorts) {
        let t = &r.telemetry;
        let burned = t.spare_rows_used + t.spare_cols_used;
        let budget = t.devices * (cohort.spare_rows as u64 + cohort.spare_cols as u64);
        match r.spare_exhaustion_hours {
            Some(hours) => {
                let _ = writeln!(
                    out,
                    "  {:<12} {burned} of {budget} spares burned in {:.2} device-hours \
                     -> ~{hours:.1} h to exhaustion",
                    r.name, r.device_hours,
                );
            }
            None => {
                let _ = writeln!(out, "  {:<12} no spares burned (budget {budget})", r.name);
            }
        }
    }
    out.push('\n');
    out.push_str("triage queue (hard-defect devices)\n");
    for r in &reports {
        let t = &r.telemetry;
        if t.hard_devices == 0 {
            let _ = writeln!(out, "  {:<12} no hard defects drawn", r.name);
        } else {
            let _ = writeln!(
                out,
                "  {:<12} {} hard -> {} silent, {} transient (no spare burned), \
                 {} repaired ({}r+{}c), {} unrepaired",
                r.name,
                t.hard_devices,
                t.triage_silent,
                t.triage_transient,
                t.triage_repaired,
                t.spare_rows_used,
                t.spare_cols_used,
                t.triage_unrepaired,
            );
        }
    }
    let all_pass = reports.iter().all(|r| r.slo_pass());
    out.push('\n');
    let _ = writeln!(
        out,
        "fleet verdict: {}",
        if all_pass {
            "every cohort meets its SLO"
        } else {
            "SLO VIOLATIONS PRESENT"
        }
    );
    out
}

/// An unobserved rate is JSON `null`, never a fabricated number.
fn json_opt(x: Option<f64>) -> String {
    x.map(|v| v.to_string())
        .unwrap_or_else(|| "null".to_owned())
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Machine-readable telemetry: one JSON document, stable field order,
/// floats in Rust's shortest-round-trip form.
pub fn fleet_json(outcome: &FleetOutcome) -> String {
    let reports = cohort_reports(outcome);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"fleet\": {{\"devices\": {}, \"seed\": {}, \"engine\": {}, \"cycles_per_hour\": {}, \
         \"slo_pass\": {}}},",
        outcome.devices,
        outcome.seed,
        json_string(if outcome.sliced { "sliced" } else { "scalar" }),
        outcome.spec.cycles_per_hour,
        reports.iter().all(|r| r.slo_pass()),
    );
    out.push_str("  \"cohorts\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let t = &r.telemetry;
        out.push_str("    {");
        let _ = write!(out, "\"name\": {}, ", json_string(&r.name));
        for (name, value) in t.fields() {
            let _ = write!(out, "\"{name}\": {value}, ");
        }
        let _ = write!(
            out,
            "\"device_hours\": {}, \"sdc_fit\": {}, \"detect_fraction\": {}, \
             \"escape_fraction\": {}, \"mean_lost_work\": {}, ",
            r.device_hours,
            json_opt(r.sdc_fit),
            json_opt(r.detect_fraction),
            json_opt(r.escape_fraction),
            json_opt(r.mean_lost_work),
        );
        let _ = write!(
            out,
            "\"mean_detection_cycle\": {}, \"spare_exhaustion_hours\": {}, ",
            json_opt(r.mean_detection_cycle),
            json_opt(r.spare_exhaustion_hours),
        );
        let _ = write!(
            out,
            "\"slo\": {{\"sdc_pass\": {}, \"detect_pass\": {}, \"pass\": {}}}",
            r.sdc_slo_pass,
            r.detect_slo_pass,
            r.slo_pass()
        );
        out.push('}');
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{FleetDriver, FleetOptions, FleetProgress};
    use crate::spec::FleetSpec;

    fn outcome() -> FleetOutcome {
        let spec = FleetSpec::preset("small").unwrap();
        let options = FleetOptions {
            threads: 1,
            sliced: false,
            ..FleetOptions::default()
        };
        match FleetDriver::new(spec, options).unwrap().run().unwrap() {
            FleetProgress::Completed(outcome) => outcome,
            FleetProgress::Halted { .. } => unreachable!("no halt requested"),
        }
    }

    #[test]
    fn report_carries_slo_verdicts_and_sections() {
        let text = fleet_report(&outcome());
        assert!(text.contains("SLO compliance"), "{text}");
        assert!(text.contains("PASS") || text.contains("FAIL"), "{text}");
        assert!(text.contains("spare-exhaustion forecast"), "{text}");
        assert!(text.contains("triage queue"), "{text}");
        assert!(text.contains("fleet verdict"), "{text}");
        for cohort in ["edge", "datacenter"] {
            assert!(text.contains(cohort), "missing {cohort}:\n{text}");
        }
    }

    #[test]
    fn unobserved_rates_render_as_na_and_null() {
        use crate::telemetry::CohortTelemetry;
        let spec = FleetSpec::preset("small").unwrap();
        let cohorts = vec![CohortTelemetry::default(); spec.cohorts.len()];
        let o = FleetOutcome {
            spec,
            seed: 1,
            sliced: true,
            devices: 0,
            cohorts,
        };
        let text = fleet_report(&o);
        assert!(text.contains("n/a"), "{text}");
        assert!(
            text.contains("every cohort meets its SLO"),
            "vacuous SLO pass:\n{text}"
        );
        let json = fleet_json(&o);
        assert!(json.contains("\"sdc_fit\": null"), "{json}");
        assert!(json.contains("\"detect_fraction\": null"), "{json}");
        assert!(json.contains("\"mean_lost_work\": null"), "{json}");
    }

    #[test]
    fn json_is_stable_and_structurally_sane() {
        let o = outcome();
        let a = fleet_json(&o);
        let b = fleet_json(&o);
        assert_eq!(a, b, "rendering is a pure function of the outcome");
        assert!(a.starts_with("{\n") && a.ends_with("}\n"));
        assert!(a.contains("\"cohorts\": ["));
        assert!(a.contains("\"slo\": {"));
        // Balanced braces/brackets (cheap structural check, no parser).
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced braces:\n{a}"
        );
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
    }
}
