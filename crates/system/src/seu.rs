//! Seed-pure single-event-upset arrivals on the system clock.
//!
//! The Aupy-style checkpoint/lost-work accounting the system campaign
//! carries only becomes meaningful when silent errors *arrive during
//! operation* with stochastic timing — a permanent fault injected at
//! reset makes scrub period, checkpoint interval and detection latency
//! degenerate to constants. This module supplies that arrival process:
//! discrete geometric inter-arrival times (the memoryless discrete-time
//! analogue of Poisson strikes) drawn by **inverse transform** from one
//! uniform deviate per arrival, so every arrival is a pure function of
//! `(seed, bank, arrival index)` — no stream state, no scheduling
//! dependence, bit-identical at every thread count (test-enforced like
//! the engines).

use crate::system::seed_mix;
use scm_memory::design::RamConfig;
use scm_memory::fault::{FaultScenario, FaultSite};

/// Domain-separation tag for SEU draws (distinct from prefill and
/// traffic seeding).
const SEU_TAG: u64 = 0x5E0_A001;

/// A geometric SEU arrival process: strikes arrive with probability
/// `1 / mean_interarrival` per system cycle, independently per bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeuProcess {
    /// Mean cycles between strikes (must be ≥ 1).
    pub mean_interarrival: f64,
}

impl SeuProcess {
    /// A process with the given mean inter-arrival time in cycles.
    ///
    /// # Panics
    /// Panics unless `mean_interarrival` is finite and ≥ 1 (sub-cycle
    /// rates are not representable on a one-op-per-cycle clock, and an
    /// infinite or NaN mean has no geometric inverse transform).
    pub fn new(mean_interarrival: f64) -> Self {
        assert!(
            mean_interarrival.is_finite() && mean_interarrival >= 1.0,
            "mean inter-arrival {mean_interarrival} must be a finite number of at least one cycle"
        );
        SeuProcess { mean_interarrival }
    }

    /// One uniform deviate in `[0, 1)`, pure in its coordinates.
    fn uniform(seed: u64, bank: usize, arrival: usize, lane: u64) -> f64 {
        let z = seed_mix(seed ^ SEU_TAG, &[bank as u64, arrival as u64, lane]);
        // 53 mantissa bits: the usual u64 → f64 uniform construction.
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Largest f64 strictly below 1.0 — the ceiling the uniform deviate
    /// is clamped to before the inverse transform.
    const U_MAX: f64 = 1.0 - f64::EPSILON / 2.0;

    /// Inverse-transform geometric draw: `⌊ln(1−u)/ln(1−p)⌋ + 1` cycles
    /// until the next success at per-cycle rate `p ∈ (0, 1)`.
    ///
    /// Finite and ≥ 1 for *any* `u`, including `u == 1.0` exactly:
    /// `u` is clamped into `[0, 1)` first, because at `u == 1.0` the
    /// numerator `ln(1 − u)` is `-inf` and the float→int cast of the
    /// resulting gap would be garbage. [`Self::uniform`]'s 53-bit
    /// construction tops out at `(2^53 − 1)/2^53` and so cannot reach
    /// 1.0 today, but the draw must not depend on that — any future
    /// deviate source (or a caller-supplied `u`) gets the same
    /// saturating tail behaviour.
    fn inverse_geometric(u: f64, p: f64) -> u64 {
        let u = u.clamp(0.0, Self::U_MAX);
        let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
        // ln(1-u) ≤ 0 and ln(1-p) < 0, so the ratio is ≥ 0 and finite;
        // the min keeps the +1 from wrapping after the cast.
        (gap.min(u64::MAX as f64 / 2.0) as u64) + 1
    }

    /// The `arrival`-th inter-arrival gap (≥ 1 cycle) for `bank` —
    /// inverse-transform geometric: `gap = ⌊ln(1−u)/ln(1−p)⌋ + 1`.
    pub fn gap(&self, seed: u64, bank: usize, arrival: usize) -> u64 {
        // The floor at 1e-12 keeps `(1.0 - p).ln()` away from the regime
        // where `1.0 - p` rounds to exactly 1.0 (p ≲ 1e-17), whose ln of
        // 0 would collapse every gap to 1 cycle — the opposite of a rare
        // strike. Means beyond ~1e12 cycles saturate there instead.
        let p = (1.0 / self.mean_interarrival).clamp(1e-12, 1.0);
        if p >= 1.0 {
            return 1;
        }
        Self::inverse_geometric(Self::uniform(seed, bank, arrival, 0), p)
    }

    /// Absolute strike cycles of the first `count` arrivals for `bank`
    /// (cumulative gaps; strictly increasing). Pure in
    /// `(seed, bank, arrival index)` — arrival `k`'s time never depends
    /// on how many arrivals were asked for.
    pub fn arrival_cycles(&self, seed: u64, bank: usize, count: usize) -> Vec<u64> {
        let mut t = 0u64;
        (0..count)
            .map(|k| {
                t = t.saturating_add(self.gap(seed, bank, k));
                t
            })
            .collect()
    }

    /// The full scenarios: arrival `k` strikes a seed-pure cell of
    /// `bank`'s geometry at its arrival cycle (a one-shot
    /// [`scm_memory::fault::FaultProcess::TransientFlip`]).
    pub fn scenarios(
        &self,
        seed: u64,
        bank: usize,
        count: usize,
        config: &RamConfig,
    ) -> Vec<FaultScenario> {
        let org = config.org();
        let rows = org.rows();
        let cols = org.physical_cols() as u64;
        self.arrival_cycles(seed, bank, count)
            .into_iter()
            .enumerate()
            .map(|(k, at)| {
                let row = (Self::uniform(seed, bank, k, 1) * rows as f64) as u64 % rows;
                let col = (Self::uniform(seed, bank, k, 2) * cols as f64) as u64 % cols;
                FaultScenario::transient(
                    FaultSite::Cell {
                        row: row as usize,
                        col: col as usize,
                        stuck: false,
                    },
                    at,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scm_area::RamOrganization;
    use scm_codes::{CodewordMap, MOutOfN};
    use scm_memory::fault::FaultProcess;

    fn config() -> RamConfig {
        let org = RamOrganization::new(64, 8, 4);
        let code = MOutOfN::new(3, 5).unwrap();
        RamConfig::new(
            org,
            CodewordMap::mod_a(code, 9, 16).unwrap(),
            CodewordMap::mod_a(code, 9, 4).unwrap(),
        )
    }

    #[test]
    fn arrivals_are_pure_and_prefix_stable() {
        let p = SeuProcess::new(40.0);
        let a = p.arrival_cycles(7, 1, 8);
        let b = p.arrival_cycles(7, 1, 8);
        assert_eq!(a, b, "pure in (seed, bank, index)");
        // Asking for fewer arrivals yields the exact prefix.
        assert_eq!(p.arrival_cycles(7, 1, 3), a[..3].to_vec());
        // Strictly increasing, gaps ≥ 1.
        for w in a.windows(2) {
            assert!(w[1] > w[0], "{a:?}");
        }
        // Distinct banks and seeds draw distinct streams.
        assert_ne!(p.arrival_cycles(7, 0, 8), a);
        assert_ne!(p.arrival_cycles(8, 1, 8), a);
    }

    #[test]
    fn mean_gap_tracks_the_configured_rate() {
        let p = SeuProcess::new(25.0);
        let n = 4000usize;
        let sum: u64 = (0..n).map(|k| p.gap(99, 0, k)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 25.0).abs() < 2.5,
            "empirical mean gap {mean} vs configured 25"
        );
    }

    #[test]
    fn rate_one_strikes_every_cycle() {
        let p = SeuProcess::new(1.0);
        assert_eq!(p.arrival_cycles(3, 0, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn scenarios_target_cells_in_range_at_their_arrival_cycles() {
        let p = SeuProcess::new(30.0);
        let cfg = config();
        let scenarios = p.scenarios(11, 2, 16, &cfg);
        let arrivals = p.arrival_cycles(11, 2, 16);
        for (s, at) in scenarios.iter().zip(arrivals) {
            let FaultSite::Cell { row, col, .. } = s.site else {
                panic!("SEUs strike cells, got {}", s.site);
            };
            assert!(row < 16 && col < 36, "({row}, {col})");
            assert_eq!(s.process, FaultProcess::TransientFlip { at });
        }
        // Targets vary (not all arrivals hit one cell).
        let distinct: std::collections::HashSet<_> = scenarios.iter().map(|s| s.site).collect();
        assert!(distinct.len() > 4, "{distinct:?}");
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn sub_cycle_rates_are_rejected() {
        let _ = SeuProcess::new(0.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_means_are_rejected() {
        let _ = SeuProcess::new(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_means_are_rejected() {
        let _ = SeuProcess::new(f64::NAN);
    }

    #[test]
    fn astronomical_means_saturate_instead_of_collapsing() {
        // Regression: with `p` small enough that `1.0 - p` rounds to
        // exactly 1.0, `ln(1 - p) == 0` drove every gap to 1 cycle —
        // the maximum strike rate from the rarest configured process.
        let p = SeuProcess::new(f64::MAX);
        let gaps: Vec<u64> = (0..32).map(|k| p.gap(5, 0, k)).collect();
        let sum: u64 = gaps.iter().sum();
        assert!(
            sum > 1_000_000_000,
            "32 gaps at a saturated ~1e12-cycle mean sum to {sum}"
        );
        assert!(gaps.iter().all(|&g| g >= 1), "{gaps:?}");
    }

    #[test]
    fn unit_uniform_deviate_yields_a_finite_gap() {
        // Regression: with `u == 1.0` exactly, `ln(1 − u)` is `-inf`
        // and the gap cast was garbage. The hashed uniform cannot reach
        // 1.0, so exercise the clamp directly through the helper.
        for p in [1e-12, 1e-6, 0.04, 0.5, 1.0 - 1e-9] {
            let g = SeuProcess::inverse_geometric(1.0, p);
            assert!(g >= 1, "u = 1.0, p = {p}: gap {g}");
            assert!(g < u64::MAX, "u = 1.0, p = {p}: gap saturated the cast");
            // The clamp maps u = 1.0 onto the largest representable
            // sub-1.0 deviate: the gap is the distribution's finite tail
            // maximum, not an artifact of the infinite numerator.
            assert_eq!(g, SeuProcess::inverse_geometric(SeuProcess::U_MAX, p));
        }
        // Out-of-range deviates on the low side clamp to the minimum gap.
        assert_eq!(SeuProcess::inverse_geometric(-3.0, 0.5), 1);
        assert_eq!(SeuProcess::inverse_geometric(0.0, 0.5), 1);
    }

    mod extreme_means {
        use super::*;
        use proptest::prelude::*;

        /// Corner-case means mixed in alongside the random draw: the
        /// saturation regime, the largest finite f64, and the smallest
        /// mean distinguishable from 1.
        const CORNERS: [f64; 4] = [1e12, 1e100, f64::MAX, 1.0 + f64::EPSILON];

        proptest! {
            #[test]
            fn prop_extreme_means_never_panic_and_arrive_monotonically(
                pick in 0usize..(CORNERS.len() + 2),
                raw in any::<u64>(),
                seed in any::<u64>(),
                bank in 0usize..4,
            ) {
                // The vendored proptest has no float strategies: map a
                // u64 draw onto [1, 1e6) for the non-corner cases.
                let mean = CORNERS
                    .get(pick)
                    .copied()
                    .unwrap_or_else(|| 1.0 + (raw as f64 / u64::MAX as f64) * 999_999.0);
                let p = SeuProcess::new(mean);
                for k in 0..64 {
                    // Every gap finite (no saturated cast) and ≥ 1,
                    // whatever the seed/mean corner.
                    let g = p.gap(seed, bank, k);
                    prop_assert!(g >= 1, "gap {g} at arrival {k}");
                    prop_assert!(g < u64::MAX / 2, "gap {g} saturated at arrival {k}");
                }
                let arrivals = p.arrival_cycles(seed, bank, 64);
                prop_assert!(arrivals[0] >= 1, "first strike before cycle 1");
                for w in arrivals.windows(2) {
                    // Strictly increasing: every gap is at least one
                    // cycle, with no overflow wrap anywhere in the
                    // cumulative sum.
                    prop_assert!(w[1] > w[0], "{:?}", arrivals);
                }
            }

            #[test]
            fn prop_inverse_geometric_is_finite_and_positive_for_any_deviate(
                raw in any::<u64>(),
                corner in 0usize..3,
                pick in 0usize..CORNERS.len(),
            ) {
                // Deviates beyond the hashed uniform's reach — including
                // exactly 1.0 — must still produce a finite gap ≥ 1.
                let u = match corner {
                    0 => 1.0,
                    1 => SeuProcess::U_MAX,
                    _ => raw as f64 / u64::MAX as f64, // may round to 1.0
                };
                let p = (1.0 / CORNERS[pick]).clamp(1e-12, 0.5);
                let g = SeuProcess::inverse_geometric(u, p);
                prop_assert!(g >= 1, "u = {u}, p = {p}: gap {g}");
                prop_assert!(g < u64::MAX / 2, "u = {u}, p = {p}: gap {g} saturated");
            }
        }
    }
}
