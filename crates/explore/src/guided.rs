//! Budget-bounded multi-fidelity guided search: Pareto fronts over
//! spaces far too large to adjudicate exhaustively.
//!
//! The sliced campaign engine made a single full-fidelity adjudication
//! ~16× cheaper, which moves the bottleneck up a layer: an
//! [`ExplorationSpace`] is a cartesian product, and products explode.
//! This module replaces *one full Monte-Carlo campaign per grid cell*
//! with **successive halving over MC fidelity levels**:
//!
//! 1. a candidate generator produces the population — the whole grid
//!    when it fits the configured population, otherwise a seed-pure
//!    stratified sample ([`ExplorationSpace::sample_stratified`])
//!    refined by local mutation of front members
//!    ([`ExplorationSpace::neighbours`]);
//! 2. every candidate is adjudicated at the lowest fidelity of a
//!    geometric trials-per-fault ladder;
//! 3. candidates that are *confidently* Pareto-dominated are pruned,
//!    survivors climb to the next fidelity, until the survivors are
//!    resolved at full fidelity and the front is extracted from them.
//!
//! The pruning rule combines two certificates:
//!
//! * **confidence-bound domination** — `k` prunes `c` when `k`'s
//!   pessimistic objective vector (escape at its Hoeffding *upper*
//!   bound) still dominates `c`'s optimistic one (escape at its *lower*
//!   bound); area and latency are exact, so only the escape axis needs
//!   the interval;
//! * **common-random-numbers ties** — points sharing a campaign
//!   environment (geometry, horizon, scrub, workload, fault mix) face
//!   literally the same operation streams, so equal per-fault outcome
//!   digests ([`EmpiricalFigures::profile_digest`]) identify structural
//!   escape ties no interval could ever separate: the cheaper point
//!   wins, and exact twins collapse onto their canonically-first
//!   representative — precisely the representative the exhaustive
//!   [`crate::pareto::pareto_front`] machinery would keep.
//!
//! Everything is pure in `(evaluator, space, config)`: candidate
//! generation is seed-pure, low-fidelity campaigns are strict prefixes
//! of the full-fidelity trial set, pruning is an all-pairs rule over a
//! canonically ordered cohort, and the budget is spent in canonical
//! order — so the report is bit-identical at every thread count and
//! lane width, and invariant under permutations of the candidate list
//! whenever the budget does not truncate the cohort.

use crate::evaluate::{EmpiricalFigures, Evaluation, Evaluator, ExploreError};
use crate::pareto::{dominates_by, front_by};
use crate::space::{DesignPoint, ExplorationSpace, FaultMix, RepairPolicy, ScrubPolicy};
use scm_area::RamOrganization;
use std::collections::HashSet;

/// The ascending trials-per-fault schedule survivors climb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FidelityLadder {
    levels: Vec<u32>,
}

impl FidelityLadder {
    /// A geometric ladder ending at `full` trials per fault: `full`,
    /// `full / eta`, `full / eta²`, … down to 1 trial, ascending.
    /// `eta` is clamped to at least 2; `full` to at least 1.
    pub fn geometric(full: u32, eta: u32) -> Self {
        let eta = eta.max(2);
        let mut levels = Vec::new();
        let mut level = full.max(1);
        while level >= 1 {
            levels.push(level);
            if level == 1 {
                break;
            }
            level /= eta;
        }
        levels.reverse();
        FidelityLadder { levels }
    }

    /// An explicit schedule, sanitised: levels are clamped to
    /// `[1, full]`, sorted ascending, deduplicated, and `full` is
    /// appended when missing — the ladder always resolves survivors at
    /// full fidelity.
    pub fn explicit(levels: &[u32], full: u32) -> Self {
        let full = full.max(1);
        let mut levels: Vec<u32> = levels.iter().map(|&l| l.clamp(1, full)).collect();
        levels.push(full);
        levels.sort_unstable();
        levels.dedup();
        FidelityLadder { levels }
    }

    /// The ascending trial counts, last entry = full fidelity.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }
}

/// Guided-search knobs. [`Default`] gives an unbounded budget, a
/// geometric `eta = 4` ladder, `δ = 10⁻³` confidence intervals, a
/// 512-candidate population and two mutation generations.
#[derive(Debug, Clone)]
pub struct GuidedConfig {
    /// Scenario-trial budget (`faults × trials` units, the same currency
    /// as [`EmpiricalFigures::scenario_trials`]). `u64::MAX` = unbounded.
    pub budget: u64,
    /// Geometric ladder factor between fidelity levels.
    pub eta: u32,
    /// Explicit trials-per-fault schedule overriding the geometric
    /// ladder (sanitised through [`FidelityLadder::explicit`]).
    pub ladder: Option<Vec<u32>>,
    /// Per-comparison confidence parameter `δ` of the Hoeffding
    /// intervals the pruning rule uses. Smaller = more conservative
    /// pruning.
    pub delta: f64,
    /// Candidate-population cap: spaces no larger than this are
    /// enumerated exhaustively, larger ones are stratified-sampled down
    /// to exactly this many candidates.
    pub population: usize,
    /// Local-mutation generations after the first climb (each expands
    /// the current front by one grid step along every axis). Only
    /// reachable in sampled mode — in exhaustive mode every neighbour
    /// has already been seen.
    pub mutation_rounds: usize,
    /// Seed of the stratified candidate sample.
    pub seed: u64,
}

impl Default for GuidedConfig {
    fn default() -> Self {
        GuidedConfig {
            budget: u64::MAX,
            eta: 4,
            ladder: None,
            delta: 1e-3,
            population: 512,
            mutation_rounds: 2,
            seed: 0x6D1D,
        }
    }
}

impl GuidedConfig {
    /// The default configuration under a scenario-trial budget.
    pub fn with_budget(budget: u64) -> Self {
        GuidedConfig {
            budget,
            ..GuidedConfig::default()
        }
    }
}

/// Accounting for one rung of one generation's climb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RungStats {
    /// Mutation generation the rung belongs to (0 = initial population).
    pub generation: usize,
    /// Trials per fault at this rung.
    pub trials: u32,
    /// Candidates alive when the rung started.
    pub entered: usize,
    /// Candidates actually campaigned (≤ `entered` when the budget
    /// clipped the cohort).
    pub evaluated: usize,
    /// Candidates dropped as infeasible at this rung.
    pub infeasible: usize,
    /// Candidates still Pareto-plausible after the rung's pruning pass
    /// (= `evaluated − infeasible` on the final, full-fidelity rung).
    pub survivors: usize,
    /// Scenario-trials spent on this rung.
    pub spent: u64,
}

/// What a guided search found and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct GuidedReport {
    /// The guided Pareto front over (area %, latency `c`, empirical mean
    /// escape), ascending-area order — every member resolved at full
    /// fidelity unless [`provisional`](Self::provisional) is set.
    pub front: Vec<Evaluation>,
    /// Per-rung accounting, in execution order.
    pub rungs: Vec<RungStats>,
    /// Total scenario-trials spent.
    pub spent: u64,
    /// What one full-fidelity campaign per candidate point would cost —
    /// the exhaustive baseline the budget is saved against. In sampled
    /// mode this extrapolates the mean per-candidate cost over the whole
    /// space.
    pub exhaustive_cost: u64,
    /// Points in the searched space (`candidates` when the search ran on
    /// an explicit candidate list).
    pub space_points: usize,
    /// Distinct candidates generated (after deduplication, before
    /// feasibility screening), mutation generations included.
    pub candidates: usize,
    /// Candidates rejected as infeasible (selection failure, unknown
    /// workload, or a stage error at any rung).
    pub infeasible: usize,
    /// Whether the population was stratified-sampled (`false` = the grid
    /// was enumerated exhaustively).
    pub sampled: bool,
    /// Whether the budget clipped any cohort: a `true` here means some
    /// candidate was never resolved and the front is best-effort under
    /// the budget rather than certified against the whole population.
    pub truncated: bool,
    /// Whether the budget died before *any* candidate reached full
    /// fidelity. The front is then the best-effort frontier over the
    /// highest fidelity actually funded — still deterministic, but its
    /// escape figures carry that rung's (wider) confidence intervals.
    pub provisional: bool,
}

/// The trace view of a guided search: one
/// [`RungPrune`](scm_obs::EventKind::RungPrune) event per rung, in
/// execution order, timestamped on the **budget clock** (`t` = total
/// scenario-trials spent once the rung settled). Derived post-hoc from
/// the report's own accounting, so the search loop pays nothing and the
/// trace inherits its determinism.
pub fn rung_events(report: &GuidedReport) -> Vec<scm_obs::Event> {
    let mut spent = 0u64;
    report
        .rungs
        .iter()
        .map(|rung| {
            spent += rung.spent;
            scm_obs::Event::global(
                spent,
                scm_obs::EventKind::RungPrune {
                    generation: rung.generation as u32,
                    fidelity: rung.trials,
                    entered: rung.entered as u32,
                    evaluated: rung.evaluated as u32,
                    survivors: rung.survivors as u32,
                    spent: rung.spent,
                },
            )
        })
        .collect()
}

impl GuidedReport {
    /// Scenario-trials saved against the exhaustive baseline.
    pub fn saved(&self) -> u64 {
        self.exhaustive_cost.saturating_sub(self.spent)
    }

    /// `spent / exhaustive_cost` (0 when the baseline is empty).
    pub fn spent_fraction(&self) -> f64 {
        if self.exhaustive_cost == 0 {
            0.0
        } else {
            self.spent as f64 / self.exhaustive_cost as f64
        }
    }
}

/// The exhaustive baseline a guided run is checked against: every point
/// of the space at full fidelity, front extracted with the same
/// canonical ordering and objectives as the guided engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveReference {
    /// The full-fidelity Pareto front over (area %, latency `c`,
    /// empirical mean escape).
    pub front: Vec<Evaluation>,
    /// Scenario-trials the exhaustive sweep spent.
    pub spent: u64,
    /// Points rejected as infeasible.
    pub infeasible: usize,
}

/// The guided objective vector: minimise decoder-checking area %,
/// tolerated latency `c`, and the **empirical** mean escape — the same
/// adjudicated view [`crate::pareto::mix_pareto_fronts`] grades
/// campaigned evaluations with. `None` for unadjudicated evaluations.
pub fn empirical_objectives(e: &Evaluation) -> Option<[f64; 3]> {
    e.empirical
        .map(|emp| [e.area_percent(), e.point.cycles as f64, emp.mean_escape])
}

/// Canonical candidate identity: the human label plus the exact `Pndc`
/// bit pattern (labels round the exponent, so the bits disambiguate).
fn canonical_key(p: &DesignPoint) -> (String, u64) {
    (p.label(), p.pndc.to_bits())
}

/// The campaign environment of a point: the axes that determine the
/// operation streams and fault universe of its adjudication. Two points
/// sharing an environment differ only in code (and in stages the guided
/// objectives ignore), so their campaigns are driven by **common random
/// numbers** and equal outcome digests certify a structural tie.
type EnvKey = (
    RamOrganization,
    u32,
    ScrubPolicy,
    String,
    FaultMix,
    u32,
    u64,
    RepairPolicy,
);

fn env_key(p: &DesignPoint) -> EnvKey {
    (
        p.geometry,
        p.cycles,
        p.scrub,
        p.workload.clone(),
        p.fault_mix,
        p.banks,
        p.checkpoint,
        p.repair,
    )
}

/// Extract the full-fidelity empirical front from a list of adjudicated
/// evaluations: canonical candidate order first (so objective-identical
/// twins keep a permutation-independent representative), then the shared
/// non-dominated filter. Unadjudicated evaluations are ignored.
pub fn empirical_front(evaluations: &[Evaluation]) -> Vec<Evaluation> {
    let mut adjudicated: Vec<Evaluation> = evaluations
        .iter()
        .filter(|e| e.empirical.is_some())
        .cloned()
        .collect();
    adjudicated.sort_by_key(|e| canonical_key(&e.point));
    front_by(&adjudicated, |e| {
        empirical_objectives(e).expect("unadjudicated evaluations were filtered out")
    })
}

/// Evaluate a whole space at full fidelity and extract the empirical
/// front — the baseline [`GuidedSearch`] is certified against in tests
/// and benches.
///
/// # Errors
/// [`ExploreError::AdjudicationRequired`] when the evaluator has no
/// adjudication stage.
pub fn exhaustive_front(
    evaluator: &Evaluator,
    space: &ExplorationSpace,
) -> Result<ExhaustiveReference, ExploreError> {
    if evaluator.adjudication().is_none() {
        return Err(ExploreError::AdjudicationRequired);
    }
    let results = evaluator.evaluate_space(space);
    let mut spent = 0u64;
    let mut infeasible = 0usize;
    let mut ok = Vec::new();
    for r in results {
        match r {
            Ok(e) => {
                spent += e.empirical.expect("adjudicating evaluator").scenario_trials;
                ok.push(e);
            }
            Err(_) => infeasible += 1,
        }
    }
    Ok(ExhaustiveReference {
        front: empirical_front(&ok),
        spent,
        infeasible,
    })
}

/// One candidate mid-climb.
struct Candidate {
    point: DesignPoint,
    key: (String, u64),
    env: EnvKey,
    /// Fault scenarios one campaign of this point runs — the per-trial
    /// budget cost.
    universe: usize,
}

/// The successive-halving engine. Borrows the evaluator; every run is a
/// pure function of `(evaluator configuration, input, config)`.
#[derive(Debug)]
pub struct GuidedSearch<'a> {
    evaluator: &'a Evaluator,
    config: GuidedConfig,
}

impl<'a> GuidedSearch<'a> {
    /// A search over `evaluator`'s pipeline (which must include an
    /// adjudication stage by the time it runs).
    pub fn new(evaluator: &'a Evaluator, config: GuidedConfig) -> Self {
        GuidedSearch { evaluator, config }
    }

    /// Search a space: exhaustive candidate enumeration when the space
    /// fits the configured population, stratified sampling plus local
    /// mutation of front members when it does not.
    ///
    /// # Errors
    /// [`ExploreError::AdjudicationRequired`] without an adjudication
    /// stage. Per-point infeasibility is *not* an error — infeasible
    /// candidates are counted and skipped.
    pub fn run(&self, space: &ExplorationSpace) -> Result<GuidedReport, ExploreError> {
        let population = self.config.population.max(1);
        let (candidates, sampled) = if space.len() <= population {
            (space.points(), false)
        } else {
            (space.sample_stratified(population, self.config.seed), true)
        };
        self.search(candidates, Some(space), sampled, space.len())
    }

    /// Search an explicit candidate list (no sampling, no mutation) —
    /// the entry point permutation-invariance is asserted through.
    ///
    /// # Errors
    /// As [`Self::run`].
    pub fn run_candidates(&self, candidates: &[DesignPoint]) -> Result<GuidedReport, ExploreError> {
        self.search(candidates.to_vec(), None, false, candidates.len())
    }

    fn ladder(&self, full: u32) -> FidelityLadder {
        match &self.config.ladder {
            Some(levels) => FidelityLadder::explicit(levels, full),
            None => FidelityLadder::geometric(full, self.config.eta),
        }
    }

    fn search(
        &self,
        candidates: Vec<DesignPoint>,
        space: Option<&ExplorationSpace>,
        sampled: bool,
        space_points: usize,
    ) -> Result<GuidedReport, ExploreError> {
        let adjudication = self
            .evaluator
            .adjudication()
            .ok_or(ExploreError::AdjudicationRequired)?;
        let full = adjudication.campaign.trials.max(1);
        let ladder = self.ladder(full);
        let mut seen: HashSet<(String, u64)> = HashSet::new();
        let mut infeasible = 0usize;
        let mut candidate_count = 0usize;
        let mut screened_cost = 0u64;
        let mut screen = |points: Vec<DesignPoint>,
                          infeasible: &mut usize,
                          candidate_count: &mut usize|
         -> Vec<Candidate> {
            let mut cohort = Vec::new();
            for point in points {
                let key = canonical_key(&point);
                if !seen.insert(key.clone()) {
                    continue;
                }
                *candidate_count += 1;
                match self.evaluator.scenario_count(&point) {
                    Ok(universe) => {
                        screened_cost += universe as u64 * full as u64;
                        cohort.push(Candidate {
                            env: env_key(&point),
                            point,
                            key,
                            universe,
                        });
                    }
                    Err(_) => *infeasible += 1,
                }
            }
            // Canonical cohort order: the budget is spent in a
            // permutation-independent order, and all downstream
            // tie-breaks inherit it.
            cohort.sort_by(|a, b| a.key.cmp(&b.key));
            cohort
        };

        let mut cohort = screen(candidates, &mut infeasible, &mut candidate_count);
        let mut resolved: Vec<Evaluation> = Vec::new();
        let mut provisional: Vec<Evaluation> = Vec::new();
        let mut rungs: Vec<RungStats> = Vec::new();
        let mut spent = 0u64;
        let mut truncated = false;

        for generation in 0..=self.config.mutation_rounds {
            if cohort.is_empty() {
                break;
            }
            let survivors = self.climb(
                cohort,
                &ladder,
                generation,
                &mut spent,
                &mut truncated,
                &mut infeasible,
                &mut rungs,
                &mut provisional,
            );
            resolved.extend(survivors);
            if generation == self.config.mutation_rounds {
                break;
            }
            // Mutate the front so far: one grid step along every axis
            // from every front member. Exhaustively enumerated spaces
            // have no unseen neighbours, so this loop only feeds in
            // sampled mode.
            let Some(space) = space else { break };
            let front_now = empirical_front(&resolved);
            let mutants: Vec<DesignPoint> = front_now
                .iter()
                .flat_map(|e| space.neighbours(&e.point))
                .collect();
            cohort = screen(mutants, &mut infeasible, &mut candidate_count);
        }

        let exhaustive_cost = if sampled {
            // Extrapolate the screened candidates' mean per-point cost
            // over the whole grid (an estimate, flagged by `sampled`).
            let feasible = candidate_count.saturating_sub(infeasible);
            if feasible == 0 {
                0
            } else {
                ((screened_cost as u128 * space_points as u128) / feasible as u128)
                    .min(u64::MAX as u128) as u64
            }
        } else {
            screened_cost
        };

        // Best-effort fallback: when the budget dies mid-ladder and
        // nothing reaches full fidelity, the frontier over the highest
        // fidelity actually funded beats an empty answer.
        let fallback = resolved.is_empty() && !provisional.is_empty();
        Ok(GuidedReport {
            front: empirical_front(if fallback { &provisional } else { &resolved }),
            rungs,
            spent,
            exhaustive_cost,
            space_points,
            candidates: candidate_count,
            infeasible,
            sampled,
            truncated,
            provisional: fallback,
        })
    }

    /// Run one cohort up the fidelity ladder; returns its full-fidelity
    /// resolved evaluations.
    #[allow(clippy::too_many_arguments)]
    fn climb(
        &self,
        mut cohort: Vec<Candidate>,
        ladder: &FidelityLadder,
        generation: usize,
        spent: &mut u64,
        truncated: &mut bool,
        infeasible: &mut usize,
        rungs: &mut Vec<RungStats>,
        provisional: &mut Vec<Evaluation>,
    ) -> Vec<Evaluation> {
        let levels = ladder.levels();
        let full = *levels.last().expect("ladders are never empty");
        let full_samples = |c: &Candidate| c.universe as u64 * full as u64;
        let mut resolved = Vec::new();
        let mut highest: Vec<Evaluation> = Vec::new();
        for (rung_index, &trials) in levels.iter().enumerate() {
            let entered = cohort.len();
            // Deterministic budget clipping: fund the canonical prefix
            // of the cohort, drop the rest the moment the budget runs
            // out. Clipped candidates are never resolved.
            let mut affordable = 0usize;
            let mut planned_cost = 0u64;
            for c in &cohort {
                let cost = c.universe as u64 * trials as u64;
                if spent.saturating_add(planned_cost).saturating_add(cost) > self.config.budget {
                    *truncated = true;
                    break;
                }
                planned_cost += cost;
                affordable += 1;
            }
            cohort.truncate(affordable);
            if cohort.is_empty() {
                rungs.push(RungStats {
                    generation,
                    trials,
                    entered,
                    evaluated: 0,
                    infeasible: 0,
                    survivors: 0,
                    spent: 0,
                });
                break;
            }
            let points: Vec<DesignPoint> = cohort.iter().map(|c| c.point.clone()).collect();
            let results = self
                .evaluator
                .evaluate_points_at_fidelity(&points, Some(trials));
            let mut rung_spent = 0u64;
            let mut rung_infeasible = 0usize;
            let mut evaluated: Vec<(Candidate, Evaluation)> = Vec::new();
            for (candidate, result) in cohort.into_iter().zip(results) {
                match result {
                    Ok(e) => {
                        rung_spent += e
                            .empirical
                            .expect("adjudicating evaluator returns figures")
                            .scenario_trials;
                        evaluated.push((candidate, e));
                    }
                    Err(_) => rung_infeasible += 1,
                }
            }
            *spent += rung_spent;
            *infeasible += rung_infeasible;
            if !evaluated.is_empty() {
                // The climb's highest funded rung so far — the fallback
                // front when nothing ever resolves at full fidelity.
                highest = evaluated.iter().map(|(_, e)| e.clone()).collect();
            }
            let last_rung = rung_index + 1 == levels.len();
            let survivors: Vec<(Candidate, Evaluation)> = if last_rung {
                evaluated
            } else {
                self.prune(evaluated, full_samples)
            };
            rungs.push(RungStats {
                generation,
                trials,
                entered,
                evaluated: affordable,
                infeasible: rung_infeasible,
                survivors: survivors.len(),
                spent: rung_spent,
            });
            if last_rung {
                resolved.extend(survivors.into_iter().map(|(_, e)| e));
                break;
            }
            cohort = survivors.into_iter().map(|(c, _)| c).collect();
        }
        provisional.extend(highest);
        resolved
    }

    /// The confidence-bound pruning pass: keep a candidate unless some
    /// cohort member *certifiably* dominates it at full fidelity.
    fn prune(
        &self,
        evaluated: Vec<(Candidate, Evaluation)>,
        full_samples: impl Fn(&Candidate) -> u64,
    ) -> Vec<(Candidate, Evaluation)> {
        let views: Vec<PruneView> = evaluated
            .iter()
            .map(|(c, e)| {
                let emp = e.empirical.expect("adjudicating evaluator");
                // The interval guards both ends of the comparison: the
                // estimate at this rung *and* the full-fidelity estimate
                // it stands in for.
                let width =
                    EmpiricalFigures::hoeffding_half_width(emp.scenario_trials, self.config.delta)
                        + EmpiricalFigures::hoeffding_half_width(
                            full_samples(c),
                            self.config.delta,
                        );
                PruneView {
                    area: e.area_percent(),
                    cycles: e.point.cycles as f64,
                    escape_lb: (emp.mean_escape - width).max(0.0),
                    escape_ub: (emp.mean_escape + width).min(1.0),
                    digest: emp.profile_digest,
                }
            })
            .collect();
        let alive: Vec<bool> = (0..views.len())
            .map(|c| {
                !(0..views.len()).any(|k| {
                    k != c
                        && certifiably_dominates(&views[k], &views[c], || {
                            (
                                evaluated[k].0.env == evaluated[c].0.env,
                                evaluated[k].0.key < evaluated[c].0.key,
                            )
                        })
                })
            })
            .collect();
        evaluated
            .into_iter()
            .zip(alive)
            .filter_map(|(pair, keep)| keep.then_some(pair))
            .collect()
    }
}

/// The per-candidate quantities the pruning rule compares.
struct PruneView {
    area: f64,
    cycles: f64,
    escape_lb: f64,
    escape_ub: f64,
    digest: u64,
}

/// Does `k` certifiably dominate `c` at full fidelity?
///
/// * Interval certificate: `k`'s pessimistic vector (escape at its
///   upper bound) dominates `c`'s optimistic one.
/// * Common-random-numbers certificate: same campaign environment and
///   equal outcome digests mean the escape axis is a structural tie at
///   every fidelity, so strictly smaller area decides — and exact
///   objective twins collapse onto the canonically-first key, the same
///   representative the exhaustive front keeps.
fn certifiably_dominates(
    k: &PruneView,
    c: &PruneView,
    env_and_order: impl FnOnce() -> (bool, bool),
) -> bool {
    if dominates_by(
        [k.area, k.cycles, k.escape_ub],
        [c.area, c.cycles, c.escape_lb],
    ) {
        return true;
    }
    if k.digest == c.digest && k.cycles == c.cycles {
        let (same_env, k_first) = env_and_order();
        if same_env {
            return k.area < c.area || (k.area == c.area && k_first);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::Adjudication;
    use scm_codes::selection::SelectionPolicy;
    use scm_memory::campaign::CampaignConfig;

    fn evaluator(trials: u32) -> Evaluator {
        Evaluator::default().adjudicate(Adjudication {
            campaign: CampaignConfig {
                cycles: 10,
                trials,
                seed: 0xE7,
                write_fraction: 0.1,
            },
            max_faults: 16,
            scrub_period: Adjudication::DEFAULT_SCRUB_PERIOD,
            sliced: true,
            lane_width: 512,
        })
    }

    fn small_space() -> ExplorationSpace {
        ExplorationSpace {
            geometries: vec![RamOrganization::new(256, 8, 4)],
            cycles: vec![2, 10, 20],
            pndcs: vec![1e-2, 1e-5, 1e-9],
            policies: SelectionPolicy::ALL.to_vec(),
            scrubs: vec![ScrubPolicy::Off],
            workloads: vec!["uniform".to_owned()],
            banks: vec![1],
            checkpoints: vec![0],
            repairs: vec![RepairPolicy::OFF],
            fault_mixes: vec![FaultMix::Permanent],
        }
    }

    #[test]
    fn geometric_ladders_end_at_full_fidelity() {
        assert_eq!(FidelityLadder::geometric(64, 4).levels(), &[1, 4, 16, 64]);
        assert_eq!(FidelityLadder::geometric(16, 4).levels(), &[1, 4, 16]);
        assert_eq!(FidelityLadder::geometric(6, 4).levels(), &[1, 6]);
        assert_eq!(FidelityLadder::geometric(1, 4).levels(), &[1]);
        assert_eq!(FidelityLadder::geometric(8, 0).levels(), &[1, 2, 4, 8]);
    }

    #[test]
    fn explicit_ladders_are_sanitised() {
        assert_eq!(
            FidelityLadder::explicit(&[16, 4, 4, 90], 64).levels(),
            &[4, 16, 64]
        );
        assert_eq!(FidelityLadder::explicit(&[], 8).levels(), &[8]);
        assert_eq!(FidelityLadder::explicit(&[0], 8).levels(), &[1, 8]);
    }

    #[test]
    fn guided_requires_adjudication() {
        let ev = Evaluator::default();
        let search = GuidedSearch::new(&ev, GuidedConfig::default());
        assert_eq!(
            search.run(&small_space()).unwrap_err(),
            ExploreError::AdjudicationRequired
        );
        assert_eq!(
            exhaustive_front(&ev, &small_space()).unwrap_err(),
            ExploreError::AdjudicationRequired
        );
    }

    #[test]
    fn guided_front_matches_exhaustive_on_a_small_space() {
        let ev = evaluator(16);
        let space = small_space();
        let reference = exhaustive_front(&ev, &space).unwrap();
        let report = GuidedSearch::new(&ev, GuidedConfig::default())
            .run(&space)
            .unwrap();
        assert!(!report.sampled);
        assert!(!report.truncated);
        assert_eq!(report.front, reference.front);
        assert!(report.spent <= reference.spent);
        assert_eq!(report.space_points, space.len());
        assert_eq!(report.candidates, space.len());
    }

    #[test]
    fn guided_spends_less_when_pruning_fires() {
        let ev = evaluator(16);
        let space = small_space();
        let report = GuidedSearch::new(&ev, GuidedConfig::default())
            .run(&space)
            .unwrap();
        let reference = exhaustive_front(&ev, &space).unwrap();
        assert!(
            report.spent < reference.spent,
            "guided {} vs exhaustive {}",
            report.spent,
            reference.spent
        );
        assert_eq!(report.saved(), report.exhaustive_cost - report.spent);
        assert!(report.spent_fraction() < 1.0);
        // Rung accounting adds up.
        assert_eq!(
            report.rungs.iter().map(|r| r.spent).sum::<u64>(),
            report.spent
        );
    }

    #[test]
    fn budget_truncation_is_flagged_and_respected() {
        let ev = evaluator(16);
        let space = small_space();
        let report = GuidedSearch::new(&ev, GuidedConfig::with_budget(200))
            .run(&space)
            .unwrap();
        assert!(report.truncated);
        assert!(report.spent <= 200, "spent {}", report.spent);
        // An unbounded run of the same space is not truncated.
        let unbounded = GuidedSearch::new(&ev, GuidedConfig::default())
            .run(&space)
            .unwrap();
        assert!(!unbounded.truncated);
    }

    #[test]
    fn candidate_order_does_not_change_the_front() {
        let ev = evaluator(8);
        let space = small_space();
        let mut points = space.points();
        let search = GuidedSearch::new(&ev, GuidedConfig::default());
        let forward = search.run_candidates(&points).unwrap();
        points.reverse();
        let backward = search.run_candidates(&points).unwrap();
        assert_eq!(forward.front, backward.front);
        assert_eq!(forward.spent, backward.spent);
        assert_eq!(forward.rungs, backward.rungs);
    }

    #[test]
    fn duplicate_candidates_collapse() {
        let ev = evaluator(8);
        let space = small_space();
        let mut points = space.points();
        let n = points.len();
        points.extend(space.points());
        let report = GuidedSearch::new(&ev, GuidedConfig::default())
            .run_candidates(&points)
            .unwrap();
        assert_eq!(report.candidates, n);
    }

    #[test]
    fn infeasible_candidates_are_counted_not_fatal() {
        let ev = evaluator(8);
        let space = ExplorationSpace {
            cycles: vec![1, 10],
            pndcs: vec![1e-2, 1e-30],
            ..small_space()
        };
        // (c=1, 1e-30) is unselectable: r ≤ 64 codes cannot meet it.
        let report = GuidedSearch::new(&ev, GuidedConfig::default())
            .run(&space)
            .unwrap();
        assert!(report.infeasible > 0);
        assert!(!report.front.is_empty());
    }

    #[test]
    fn sampled_mode_engages_on_large_spaces_and_stays_in_budget() {
        let ev = evaluator(8);
        let space = ExplorationSpace {
            cycles: vec![2, 5, 10, 20, 30, 40],
            pndcs: vec![1e-2, 1e-4, 1e-5, 1e-7, 1e-9, 1e-12],
            workloads: vec!["uniform".to_owned(), "hotspot".to_owned()],
            scrubs: vec![ScrubPolicy::Off, ScrubPolicy::SequentialSweep],
            ..small_space()
        };
        assert!(space.len() > 64);
        let config = GuidedConfig {
            budget: 30_000,
            population: 64,
            mutation_rounds: 1,
            ..GuidedConfig::default()
        };
        let report = GuidedSearch::new(&ev, config).run(&space).unwrap();
        assert!(report.sampled);
        assert!(report.spent <= 30_000);
        assert!(!report.front.is_empty());
        assert!(report.candidates >= 64, "mutants extend the population");
        assert!(report.exhaustive_cost > report.spent);
        // Mutation generations appear in the rung accounting.
        assert!(report.rungs.iter().any(|r| r.generation == 1));
    }
}
