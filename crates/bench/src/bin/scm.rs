//! The unified experiment driver: `scm <subcommand>`.
//!
//! One binary over the `scm-explore` engine replaces the former
//! per-experiment mains (`pareto`, `table1`, `table2`, `ablations`) and
//! adds free exploration (`explore`) and workload-selectable campaigns
//! (`campaign`). Run `scm help` for the full surface.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match scm_bench::cli::run(&args) {
        Ok(stdout) => {
            print!("{stdout}");
            match args.first().map(String::as_str) {
                Some("pareto") => {
                    eprintln!("# rows are the achievable (latency, area) points; the Pareto front");
                    eprintln!("# is monotone: tighter budgets never select narrower codes.");
                }
                Some("explore") => {
                    eprintln!("# tip: --workload all sweeps every workload model; --adjudicate");
                    eprintln!("# runs Monte-Carlo campaigns per point on the parallel engine.");
                }
                _ => {}
            }
        }
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
